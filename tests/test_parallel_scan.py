"""Partition-parallel merged scans: partitioning, bit-identity, edges.

The differential tests here are the PR's acceptance gate: for every
generated document (including skewed single-subtree shapes) and every
query, the parallel operator's per-NoK match lists must equal the
serial merged scan's — order included — because Theorem 1 makes
partition-order concatenation reproduce the serial scan exactly.
"""

import pytest

from repro.errors import DNFError, PlanInvariantError
from repro.pattern import build_from_path, decompose
from repro.physical import merged_scan
from repro.physical.parallel_scan import parallel_merged_scan
from repro.xmlkit import parse
from repro.xmlkit.partition import (
    DEFAULT_MIN_PARTITION_NODES,
    Partition,
    partition_document,
)
from repro.xmlkit.storage import ScanCounters
from repro.xpath import parse_xpath


def wide_doc(n_books: int = 200) -> str:
    return "<bib>" + "".join(
        f"<shelf><book year='{1990 + i % 20}'><author>a{i % 7}</author>"
        f"<title>t{i}</title><price>{i % 50}</price></book></shelf>"
        for i in range(n_books)) + "</bib>"


def skewed_doc(n_items: int = 300) -> str:
    """One giant child subtree holding nearly every node, plus crumbs —
    the shape that defeats naive top-level-subtree partitioning."""
    giant = "".join(f"<item><name>n{i}</name><price>{i % 9}</price></item>"
                    for i in range(n_items))
    return f"<root><tiny/><giant>{giant}</giant><tail><item/></tail></root>"


def noks_for(path_text: str):
    tree = build_from_path(parse_xpath(path_text))
    return decompose(tree).noks


def fine_partitions(doc, k: int):
    return partition_document(doc, k, min_nodes=1)


class TestPartitioner:
    def test_partitions_tile_the_arena(self):
        doc = parse(wide_doc(200))
        for k in (2, 3, 4, 7):
            parts = partition_document(doc, k, min_nodes=1)
            assert parts[0].start_nid == 0
            assert parts[-1].stop_nid == len(doc.nodes)
            for a, b in zip(parts, parts[1:]):
                assert a.stop_nid == b.start_nid     # disjoint, ordered
                assert b.index == a.index + 1
            assert sum(p.n_nodes for p in parts) == len(doc.nodes)

    def test_single_partition_below_min_nodes(self):
        doc = parse("<a><b/><c/></a>")
        parts = partition_document(doc, 8)
        assert parts == [Partition(0, 0, len(doc.nodes))]

    def test_single_partition_for_serial_parallelism(self):
        doc = parse(wide_doc(200))
        assert len(partition_document(doc, 1, min_nodes=1)) == 1

    def test_default_min_keeps_small_documents_whole(self):
        doc = parse(wide_doc(10))
        assert len(doc.nodes) <= DEFAULT_MIN_PARTITION_NODES
        assert len(partition_document(doc, 4)) == 1

    def test_skewed_single_subtree_is_split(self):
        doc = parse(skewed_doc(300))
        parts = partition_document(doc, 4, min_nodes=1)
        # Without splitting, the giant child would force one partition.
        assert len(parts) > 1
        assert parts[-1].stop_nid == len(doc.nodes)
        assert sum(p.n_nodes for p in parts) == len(doc.nodes)

    def test_stats_drive_the_target_size(self):
        from repro.xmlkit.stats import compute_stats

        doc = parse(wide_doc(200))
        with_stats = partition_document(doc, 4, min_nodes=1,
                                        stats=compute_stats(doc,
                                                            with_size=False))
        without = partition_document(doc, 4, min_nodes=1)
        assert [(p.start_nid, p.stop_nid) for p in with_stats] == \
            [(p.start_nid, p.stop_nid) for p in without]


QUERIES = ["//book", "//book/author", "//shelf//title",
           "//book[@year = '1995']", "//book[price > 25]/title", "//*"]
SKEW_QUERIES = ["//item", "//item/name", "//item[price = 3]", "//giant//name"]


class TestDifferentialBitIdentity:
    """Parallel output == serial output, match list by match list."""

    def assert_identical(self, doc, path_text, k):
        noks = noks_for(path_text)
        serial = merged_scan(noks, doc)
        noks2 = noks_for(path_text)
        parallel = parallel_merged_scan(noks2, doc,
                                        partitions=fine_partitions(doc, k))
        assert set(serial) == {n.nok_id for n in noks}
        for nok_id, entries in serial.items():
            got = parallel[nok_id]
            # nid sequences compare order as well as membership.
            assert [e.node.nid for e in got] == \
                [e.node.nid for e in entries], (path_text, nok_id, k)

    @pytest.mark.parametrize("path_text", QUERIES)
    def test_wide_document(self, path_text):
        doc = parse(wide_doc(150))
        for k in (2, 3, 5):
            self.assert_identical(doc, path_text, k)

    @pytest.mark.parametrize("path_text", SKEW_QUERIES)
    def test_skewed_single_subtree_document(self, path_text):
        doc = parse(skewed_doc(250))
        for k in (2, 4):
            self.assert_identical(doc, path_text, k)

    def test_recursive_document(self, recursive_doc):
        self.assert_identical(recursive_doc, "//section", 3)

    def test_counters_match_serial_totals(self):
        doc = parse(wide_doc(150))
        noks = noks_for("//book/author")
        serial = ScanCounters()
        merged_scan(noks, doc, serial)
        parallel = ScanCounters()
        parts = fine_partitions(doc, 4)
        parallel_merged_scan(noks_for("//book/author"), doc, parallel,
                             partitions=parts)
        # Every arena slot is charged exactly once either way; only the
        # scan count differs (one SequentialScan per partition).
        assert parallel.nodes_scanned == serial.nodes_scanned
        assert parallel.comparisons == serial.comparisons
        assert parallel.scans_started == len(parts)

    def test_single_partition_degenerates_to_serial(self):
        doc = parse(wide_doc(20))
        counters = ScanCounters()
        results = parallel_merged_scan(noks_for("//book"), doc, counters,
                                       parallelism=4)
        assert counters.scans_started == 1     # fallback path
        noks = noks_for("//book")
        serial = merged_scan(noks, doc)
        book_id = next(n.nok_id for n in noks if n.root.name == "book")
        assert [e.node.nid for e in results[book_id]] == \
            [e.node.nid for e in serial[book_id]]

    def test_per_nok_attribution_folds_into_shared(self):
        doc = parse(wide_doc(150))
        counters = ScanCounters()
        per_nok = {}
        parallel_merged_scan(noks_for("//book[price > 25]/title"), doc,
                             counters, per_nok,
                             partitions=fine_partitions(doc, 3))
        assert per_nok
        assert counters.comparisons == \
            sum(c.comparisons for c in per_nok.values())

    def test_budget_is_enforced_globally(self):
        doc = parse(wide_doc(150))
        counters = ScanCounters(budget=10)
        with pytest.raises(DNFError):
            parallel_merged_scan(noks_for("//book"), doc, counters,
                                 partitions=fine_partitions(doc, 3))
        assert counters.budget_trips >= 1

    def test_global_budget_is_a_shared_cap_not_per_partition(self):
        """Regression for the per-partition budget bug: each of k
        partitions used to receive the *full* budget, so total work
        could reach k x budget before any task tripped.  The cap is now
        a shared counter: a budget below the document size must trip
        even when every individual partition is comfortably under it."""
        doc = parse(wide_doc(150))
        n_nodes = len(doc.nodes)
        parts = fine_partitions(doc, 3)
        per_partition = max(p.n_nodes for p in parts)
        # Generous for any single partition, insufficient globally.
        budget = per_partition + 50
        assert budget < n_nodes
        counters = ScanCounters(budget=budget)
        with pytest.raises(DNFError):
            parallel_merged_scan(noks_for("//book"), doc, counters,
                                 partitions=parts)
        assert counters.budget_trips >= 1
        # Overshoot is bounded by partitions x stride, not by
        # partitions x budget as under the old semantics.
        from repro.physical.parallel_scan import _BUDGET_STRIDE

        assert counters.nodes_scanned <= budget + len(parts) * _BUDGET_STRIDE


class TestMergedScanEdges:
    """Serial merged-scan edge paths the parallel loop replicates."""

    def test_wildcard_and_named_roots_share_one_scan(self):
        doc = parse(wide_doc(30))
        # One decomposition yields a named NoK (book) and a wildcard
        # NoK (*) with distinct nok_ids sharing one scan.
        noks = [n for n in noks_for("//book//*") if n.root.name != "#root"]
        book_nok = next(n for n in noks if n.root.name == "book")
        star_nok = next(n for n in noks if n.root.name == "*")
        counters = ScanCounters()
        results = merged_scan(noks, doc, counters)
        assert counters.scans_started == 1
        # Dispatch must offer a "book" element to BOTH the named and the
        # wildcard NoK, and each list must stay in document order.
        book_nids = [e.node.nid for e in results[book_nok.nok_id]]
        star_nids = [e.node.nid for e in results[star_nok.nok_id]]
        assert book_nids == sorted(book_nids)
        assert star_nids == sorted(star_nids)
        assert len(book_nids) == 30
        assert set(book_nids) <= set(star_nids)
        # Individual NoKMatcher runs over the same NoKs agree exactly.
        for nok in (book_nok, star_nok):
            solo = merged_scan([nok], doc)
            assert [e.node.nid for e in solo[nok.nok_id]] == \
                [e.node.nid for e in results[nok.nok_id]]

    def test_wildcard_only_dispatch(self):
        doc = parse("<a><b/><c/></a>")
        star = noks_for("//*")
        star_nok = next(n for n in star if n.root.name == "*")
        results = merged_scan([star_nok], doc)
        assert len(results[star_nok.nok_id]) == 3

    def test_budget_trip_still_folds_per_nok_counters(self):
        doc = parse(wide_doc(150))
        noks = [n for n in noks_for("//book/author")
                if n.root.name != "#root"]
        counters = ScanCounters(budget=50)
        per_nok = {}
        with pytest.raises(DNFError):
            merged_scan(noks, doc, counters, per_nok)
        # The finally block folded the partial per-NoK match work into
        # the shared totals despite the abort.
        assert counters.budget_trips == 1
        assert per_nok
        assert counters.comparisons == \
            sum(c.comparisons for c in per_nok.values())
        assert counters.comparisons > 0


class TestEngineParallelStrategy:
    def make_engine(self, xml):
        from repro.engine.session import Engine

        return Engine(parse(xml))

    def test_auto_upgrade_and_bit_identity(self):
        engine = self.make_engine(wide_doc(600))
        serial = engine.query("//book[price > 10]/title").items
        parallel = engine.query("//book[price > 10]/title",
                                executor="threads:4").items
        assert "parallel" in engine.last_plan
        assert [n.nid for n in serial] == [n.nid for n in parallel]

    def test_auto_stays_serial_below_threshold(self):
        engine = self.make_engine(wide_doc(20))
        engine.query("//book", executor="threads:4")
        assert "parallel" not in engine.last_plan

    def test_explicit_parallel_strategy(self):
        engine = self.make_engine(wide_doc(100))
        result = engine.query("//book", strategy="parallel")
        assert "parallel" in engine.last_plan
        assert len(result.items) == 100

    def test_auto_withdraws_for_partition_unsafe_plan(self):
        engine = self.make_engine(wide_doc(600))
        engine.query("/bib/shelf", executor="threads:4")
        assert "withdrawn" in engine.last_plan
        assert "PL004" in engine.last_plan

    def test_explicit_parallel_refused_with_pl004(self):
        engine = self.make_engine(wide_doc(100))
        with pytest.raises(PlanInvariantError) as excinfo:
            engine.query("/bib/shelf", strategy="parallel")
        assert "PL004" in excinfo.value.rule_ids

    def test_plan_cache_keys_include_executor(self):
        engine = self.make_engine(wide_doc(600))
        engine.query("//book")
        engine.query("//book")
        engine.query("//book", executor="threads:4")  # distinct key: a miss
        engine.query("//book", executor="threads:4")  # now a hit
        stats = engine.plan_cache.stats()
        assert stats["size"] >= 2

    def test_prepared_query_pins_executor(self):
        engine = self.make_engine(wide_doc(600))
        prepared = engine.prepare("//book", executor="threads:4")
        assert prepared.executor.key == "threads:4"
        assert prepared.parallelism == 4
        parallel = prepared.execute().items
        assert "parallel" in engine.last_plan
        serial = prepared.execute(executor="serial").items
        assert "parallel" not in engine.last_plan
        assert [n.nid for n in serial] == [n.nid for n in parallel]

    def test_parallelism_kwarg_is_removed(self):
        # The one-release parallelism= → executor= shim is gone; the
        # old spelling fails like any other unknown keyword.
        engine = self.make_engine(wide_doc(600))
        with pytest.raises(TypeError, match="parallelism"):
            engine.query("//book", parallelism=4)
        with pytest.raises(TypeError, match="parallelism"):
            engine.prepare("//book", parallelism=4)

    def test_skewed_document_through_the_engine(self):
        engine = self.make_engine(skewed_doc(900))
        serial = engine.query("//item/name").items
        parallel = engine.query("//item/name", executor="threads:4").items
        assert "parallel" in engine.last_plan
        assert [n.nid for n in serial] == [n.nid for n in parallel]

    def test_partition_spans_in_trace(self):
        engine = self.make_engine(wide_doc(600))
        result = engine.query("//book", executor="threads:4", trace=True)
        names = [span.name for _, span in result.trace.walk()]
        assert "partition-scan" in names
