"""The analyzer CLI and the built-in corpora.

The examples corpus and the datagen workloads are the analyzer's
regression anchor: every query in them must compile to artifacts that
pass every rule with zero findings.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.__main__ import analyze_query_text, main
from repro.analysis.corpus import EXAMPLE_QUERIES


class TestCorpora:
    @pytest.mark.parametrize("name", sorted(EXAMPLE_QUERIES))
    def test_example_analyzes_clean(self, name):
        report = analyze_query_text(EXAMPLE_QUERIES[name], source=name)
        assert report is not None, "example left the pattern subset"
        assert report.clean, report.format()

    def test_examples_cover_every_pass(self):
        passes = set()
        for name, text in EXAMPLE_QUERIES.items():
            report = analyze_query_text(text, source=name)
            passes.update(report.passes_run)
        assert passes == {"ast", "blossom", "decomposition", "dewey", "plan"}

    def test_workloads_analyze_clean(self):
        from repro.datagen.workload import DATASETS

        for dataset_name, dataset in DATASETS.items():
            for spec in dataset.queries:
                report = analyze_query_text(
                    spec.text, source=f"{dataset_name}:{spec.qid}")
                if report is not None:
                    assert report.clean, report.format()

    def test_navigational_fallback_returns_none(self):
        # Two FLWORs in one constructor are evaluated directly; nothing
        # to verify.
        text = ("<x>{ for $a in //book return $a }"
                "{ for $b in //title return $b }</x>")
        assert analyze_query_text(text) is None


class TestCli:
    def test_rules_flag_prints_catalogue(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        assert "AST001" in out and "PL003" in out

    def test_examples_exit_zero(self, capsys):
        assert main(["--examples", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_query_file_ok(self, tmp_path, capsys):
        query = tmp_path / "q.xq"
        query.write_text("for $a in //book return $a/title")
        assert main([str(query)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_parse_failure_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.xq"
        bad.write_text("for $a in ((( return")
        assert main([str(bad)]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.xq")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["--examples", "--workloads", "--quiet",
                     "--json", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["tool"] == "repro.analysis"
        assert payload["errors"] == 0
        assert payload["queries_analyzed"] == len(payload["reports"])
        for report in payload["reports"]:
            assert report["ok"]
