"""The observability layer: tracing, metrics, exports, EXPLAIN ANALYZE,
the slow-query log, and budget-trip reporting."""

from __future__ import annotations

import json

import pytest

from repro.engine.database import Database
from repro.engine.session import Engine
from repro.errors import DNFError
from repro.obs import (
    REGISTRY,
    MetricsRegistry,
    QueryTrace,
    SlowQueryLog,
    Tracer,
    prometheus_text,
)
from repro.obs.trace import NULL_TRACER
from repro.xmlkit.storage import ScanCounters

from tests.conftest import PAPER_QUERY

FLWOR = """
for $b in doc("bib.xml")//book
where $b/author
return $b/title
"""

#: Correlated FLWOR whose $b//last step becomes a real (non-vacuous)
#: inter-NoK descendant join.
CORRELATED = """
for $b in doc("bib.xml")//book, $l in $b//last
return $l
"""


# ----------------------------------------------------------------------
# Tracer core.
# ----------------------------------------------------------------------

def test_tracer_builds_parent_child_tree():
    tracer = Tracer()
    with tracer.span("outer", kind="test") as outer:
        with tracer.span("inner") as inner:
            inner.set(n=3)
        outer.set(done=True)
    trace = tracer.finish()
    root = trace.root
    assert root.name == "outer"
    assert root.attrs == {"kind": "test", "done": True}
    assert [c.name for c in root.children] == ["inner"]
    assert root.children[0].attrs == {"n": 3}
    assert root.duration_ns >= root.children[0].duration_ns >= 0


def test_tracer_closes_spans_on_exception_and_records_error():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("work"):
            raise ValueError("boom")
    trace = tracer.finish()
    assert trace.root.end_ns >= trace.root.start_ns
    assert trace.root.attrs["error"] == "ValueError"


def test_null_tracer_is_inert():
    with NULL_TRACER.span("anything", x=1) as span:
        span.set(y=2)
    assert NULL_TRACER.finish().roots == []


# ----------------------------------------------------------------------
# Engine tracing.
# ----------------------------------------------------------------------

def test_query_trace_has_phase_nok_and_join_spans(paper_bib):
    engine = Engine(paper_bib)
    result = engine.query(PAPER_QUERY, trace=True)
    trace = result.trace
    assert isinstance(trace, QueryTrace)
    assert trace is engine.last_trace
    assert trace.root.name == "query"
    assert trace.root.attrs["items"] == len(result)

    for name in ("compile", "optimize", "execute", "match-phase",
                 "join-phase", "bind-phase", "finish-phase"):
        assert trace.find(name) is not None, name

    # One nok-scan span per NoK and one inter-join span per inter edge
    # of the query's decomposition (Algorithm 1).
    from repro.engine.compiler import compile_query
    from repro.pattern.decompose import decompose

    dec = decompose(compile_query(PAPER_QUERY).tree)
    nok_spans = trace.find_all("nok-scan")
    assert len(nok_spans) == len(dec.noks) == 3
    for span in nok_spans:
        assert span.attrs["shared_scan"] is True
        assert span.attrs["nodes_scanned"] > 0
        assert "matches" in span.attrs and "root_tag" in span.attrs

    join_spans = trace.find_all("inter-join")
    assert len(join_spans) == len(dec.inter_edges) == 2
    for span in join_spans:
        assert "algorithm" in span.attrs
        assert span.attrs["pairs"] >= 0


def test_untraced_query_has_no_trace(paper_bib):
    engine = Engine(paper_bib)
    result = engine.query("//book/title")
    assert result.trace is None
    assert result.counters is not None
    assert result.counters.nodes_scanned > 0


def test_trace_exports_jsonl_and_pretty(paper_bib):
    engine = Engine(paper_bib)
    trace = engine.query(FLWOR, trace=True).trace
    lines = [json.loads(line) for line in trace.to_jsonl().splitlines()]
    assert lines[0]["name"] == "query"
    assert lines[0]["parent"] is None
    by_id = {line["id"]: line for line in lines}
    assert all(line["parent"] in by_id for line in lines[1:])
    assert any(line["name"] == "match-phase" for line in lines)

    text = trace.pretty()
    assert "query (" in text
    assert "match-phase" in text
    assert "└─" in text


# ----------------------------------------------------------------------
# Metrics registry.
# ----------------------------------------------------------------------

def test_registry_create_or_get_and_kind_mismatch():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "help")
    assert registry.counter("x_total") is a
    with pytest.raises(ValueError):
        registry.gauge("x_total")


def test_counter_gauge_histogram_semantics():
    registry = MetricsRegistry()
    counter = registry.counter("c_total")
    counter.inc(strategy="a")
    counter.inc(2, strategy="a")
    counter.inc(strategy="b")
    assert counter.value(strategy="a") == 3
    assert counter.value(strategy="b") == 1
    with pytest.raises(ValueError):
        counter.inc(-1)

    gauge = registry.gauge("g")
    gauge.max(5)
    gauge.max(3)
    assert gauge.value() == 5

    histogram = registry.histogram("h_ms", buckets=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(7.0)
    histogram.observe(100.0)
    assert histogram.count() == 3
    assert histogram.sum() == pytest.approx(107.5)


def test_query_feeds_process_metrics(paper_bib):
    engine = Engine(paper_bib)
    queries = REGISTRY.get("repro_queries_total")
    nodes = REGISTRY.get("repro_nodes_scanned_total")
    latency = REGISTRY.get("repro_query_latency_ms")
    before_q = queries.value(strategy="pipelined")
    before_n = nodes.value()
    before_lat = latency.count(strategy="pipelined")

    engine.query("//book/title", strategy="pipelined")

    assert queries.value(strategy="pipelined") == before_q + 1
    assert nodes.value() > before_n
    assert latency.count(strategy="pipelined") == before_lat + 1


def test_metrics_are_deltas_when_counters_reused(paper_bib):
    engine = Engine(paper_bib)
    nodes = REGISTRY.get("repro_nodes_scanned_total")
    counters = ScanCounters()
    engine.query("//book/title", strategy="pipelined", counters=counters)
    first_total = counters.nodes_scanned
    before = nodes.value()
    engine.query("//book/title", strategy="pipelined", counters=counters)
    # Second run publishes only its own work, not the accumulated total.
    assert nodes.value() - before == counters.nodes_scanned - first_total


def test_operator_and_join_selection_metrics(paper_bib):
    engine = Engine(paper_bib)
    invocations = REGISTRY.get("repro_operator_invocations_total")
    selected = REGISTRY.get("repro_join_selected_total")
    before_scan = invocations.value(operator="merged_scan")
    before_pl = selected.value(algorithm="pipelined")
    engine.query(CORRELATED, strategy="pipelined")
    assert invocations.value(operator="merged_scan") == before_scan + 1
    assert selected.value(algorithm="pipelined") == before_pl + 1


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    counter = registry.counter("demo_total", "Demo counter")
    counter.inc(4, strategy="pl")
    histogram = registry.histogram("demo_ms", "Demo latency", buckets=(1.0,))
    histogram.observe(0.5)
    text = prometheus_text(registry)
    assert "# HELP demo_total Demo counter" in text
    assert "# TYPE demo_total counter" in text
    assert 'demo_total{strategy="pl"} 4' in text
    assert 'demo_ms_bucket{le="1"} 1' in text
    assert 'demo_ms_bucket{le="+Inf"} 1' in text
    assert "demo_ms_count 1" in text


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE.
# ----------------------------------------------------------------------

def test_explain_analyze_one_row_per_nok_and_join(paper_bib):
    engine = Engine(paper_bib)
    text = engine.explain_analyze(PAPER_QUERY)
    lines = text.splitlines()
    assert lines[0] == "EXPLAIN ANALYZE"
    # The acceptance query: one row per NoK scan, one per inter join.
    assert sum(1 for line in lines if line.startswith("scan NoK#")) == 3
    assert sum(1 for line in lines if line.startswith("join V")) == 2
    # Measured columns next to the model's estimates.
    header = next(line for line in lines if line.startswith("operator"))
    for column in ("time ms", "nodes", "est.nodes", "cmp", "rows", "est.rows"):
        assert column in header
    assert any(line.startswith("plan: ") for line in lines)
    assert any(line.startswith("phases: match=") for line in lines)
    assert any(line.startswith("counters: nodes_scanned=") for line in lines)


def test_explain_analyze_estimates_match_cost_model(paper_bib):
    engine = Engine(paper_bib)
    text = engine.explain_analyze(PAPER_QUERY)
    # The NoK scan estimate is the full document (sequential access
    # method) and the book cardinality is 4 in the Example 2 document.
    book_rows = [line for line in text.splitlines()
                 if line.startswith("scan NoK#") and "[book]" in line]
    assert book_rows
    n_nodes = len(engine.doc.nodes)
    for row in book_rows:
        assert f"{n_nodes:,}" in row


def test_explain_analyze_naive_plan_reports_no_operator_rows(paper_bib):
    engine = Engine(paper_bib)
    text = engine.explain_analyze("1 + 1", strategy="naive")
    assert "no per-operator spans" in text


def test_database_explain_analyze_delegates(paper_bib):
    db = Database(paper_bib)
    assert db.explain_analyze("//book/title").startswith("EXPLAIN ANALYZE")


# ----------------------------------------------------------------------
# Slow-query log.
# ----------------------------------------------------------------------

def test_slow_query_log_records_past_threshold(paper_bib, tmp_path):
    log_path = tmp_path / "slow.jsonl"
    db = Database(paper_bib)
    db.configure_slow_log(threshold_ms=0.0, path=log_path)
    db.query(FLWOR)
    db.query("//book/title", strategy="pipelined")
    assert len(db.slow_log) == 2
    record = db.slow_log.entries[1]
    assert record.strategy == "pipelined"
    assert "pipelined" in record.plan
    assert record.elapsed_ms > 0
    assert record.counters["nodes_scanned"] > 0
    assert "//book/title" in record.describe()
    dumped = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert len(dumped) == 2
    assert dumped[0]["query"].strip() == FLWOR.strip()


def test_slow_query_log_threshold_filters(paper_bib):
    db = Database(paper_bib, slow_query_ms=1e9)   # nothing is that slow
    db.query("//book/title")
    assert len(db.slow_log) == 0


def test_slow_query_log_ring_bound():
    log = SlowQueryLog(threshold_ms=0.0, max_entries=3)
    for i in range(5):
        log.observe(f"q{i}", "auto", "plan", elapsed_ms=1.0)
    assert [r.query for r in log.entries] == ["q2", "q3", "q4"]


# ----------------------------------------------------------------------
# Budget trips (satellite: DNF shows up in trace AND metrics).
# ----------------------------------------------------------------------

def test_budget_trip_reported_in_trace_and_metrics(paper_bib):
    engine = Engine(paper_bib)
    trips = REGISTRY.get("repro_budget_trips_total")
    dnf = REGISTRY.get("repro_dnf_total")
    before_trips = trips.value()
    before_dnf = dnf.value(strategy="pipelined")

    counters = ScanCounters()
    with pytest.raises(DNFError):
        engine.query(PAPER_QUERY, strategy="pipelined", counters=counters,
                     work_budget=3, trace=True)

    # Counter-level: the scan recorded the trip...
    assert counters.budget_trips == 1
    # ...the process metrics saw both the trip and the DNF...
    assert trips.value() == before_trips + 1
    assert dnf.value(strategy="pipelined") == before_dnf + 1
    # ...and the trace (kept on the engine despite the raise) carries
    # the budget attributes on the root query span.
    trace = engine.last_trace
    assert trace is not None
    root = trace.root
    assert root.attrs["budget_tripped"] is True
    assert root.attrs["budget"] == 3
    assert root.attrs["nodes_scanned"] >= 3
    assert root.attrs.get("error") == "DNFError"
