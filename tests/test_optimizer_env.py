"""Unit tests for the rule-based optimizer and the Env ADT."""

import pytest

from repro.algebra.env import Env
from repro.algebra.nested_list import NLEntry
from repro.engine.optimizer import PlanChoice, choose_strategy
from repro.pattern import build_from_path
from repro.xmlkit import compute_stats
from repro.xpath import parse_xpath
from repro.xquery import parse_flwor
from repro.pattern.build import build_blossom_tree


@pytest.fixture
def flat_stats(small_bib):
    return compute_stats(small_bib, with_size=False)


@pytest.fixture
def deep_stats(recursive_doc):
    return compute_stats(recursive_doc, with_size=False)


class TestRuleBasedOptimizer:
    def test_no_tree_means_naive(self, flat_stats):
        choice = choose_strategy(flat_stats, None, True, True)
        assert choice.strategy == "naive"

    def test_flat_document_gets_pipelined(self, flat_stats):
        tree = build_from_path(parse_xpath("//book//last"))
        choice = choose_strategy(flat_stats, tree, True, True)
        assert choice.strategy == "pipelined"
        assert "Theorem 2" in choice.reason

    def test_recursive_path_with_index_gets_twigstack(self, deep_stats):
        tree = build_from_path(parse_xpath("//section//title"))
        choice = choose_strategy(deep_stats, tree, True, True)
        assert choice.strategy == "twigstack"

    def test_recursive_without_index_gets_stack(self, deep_stats):
        tree = build_from_path(parse_xpath("//section//title"))
        choice = choose_strategy(deep_stats, tree, True, False)
        assert choice.strategy == "stack"

    def test_recursive_flwor_gets_stack(self, deep_stats):
        tree = build_blossom_tree(parse_flwor(
            "for $s in //section let $t := $s/title return $t"))
        choice = choose_strategy(deep_stats, tree, False, True)
        assert choice.strategy == "stack"

    def test_plan_choice_str(self):
        assert "because" not in str(PlanChoice("x", "a reason"))
        assert str(PlanChoice("stack", "why")) == "stack (why)"


class TestEnv:
    def _entry(self, small_bib, tag, index=0):
        tree = build_from_path(parse_xpath(f"//{tag}"))
        vertex = tree.var_vertex["#result"]
        node = small_bib.elements_by_tag(tag)[index]
        return NLEntry(vertex, node, 0)

    def test_bind_for_is_persistent(self, small_bib):
        base = Env()
        entry = self._entry(small_bib, "book")
        bound = base.bind_for("b", entry)
        assert "b" not in base.values
        assert bound.values["b"] == [entry.node]
        assert bound.anchors["b"] == [entry]

    def test_bind_let_empty_sequence(self, small_bib):
        env = Env().bind_let("a", [])
        assert env.values["a"] == []
        assert env.node_of("a") is None

    def test_node_of(self, small_bib):
        entry = self._entry(small_bib, "title", 1)
        env = Env().bind_for("t", entry)
        assert env.node_of("t").string_value() == "Data on the Web"

    def test_as_variables_shape(self, small_bib):
        entry = self._entry(small_bib, "price")
        env = Env().bind_for("p", entry).bind_let("q", [entry])
        variables = env.as_variables()
        assert set(variables) == {"p", "q"}
        assert variables["p"] == variables["q"]

    def test_rebinding_shadows(self, small_bib):
        first = self._entry(small_bib, "book", 0)
        second = self._entry(small_bib, "book", 1)
        env = Env().bind_for("b", first).bind_for("b", second)
        assert env.values["b"] == [second.node]
