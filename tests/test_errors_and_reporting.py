"""Unit tests for the error hierarchy, bench reporting and the CLI."""

import pytest

from repro.bench.reporting import format_dict_table
from repro.bench import __main__ as bench_cli
from repro.errors import (
    CompileError,
    DNFError,
    ExecutionError,
    QuerySyntaxError,
    ReproError,
    StaticError,
    XMLSyntaxError,
)


class TestErrorHierarchy:
    def test_single_catchall_base(self):
        for exc_type in (XMLSyntaxError, QuerySyntaxError, StaticError,
                         CompileError, ExecutionError, DNFError):
            assert issubclass(exc_type, ReproError)

    def test_dnf_is_execution_error(self):
        assert issubclass(DNFError, ExecutionError)

    def test_xml_error_position_formatting(self):
        error = XMLSyntaxError("bad thing", line=3, column=7)
        assert "line 3" in str(error) and error.column == 7

    def test_query_error_caret(self):
        error = QuerySyntaxError("oops", position=4, query="//a[[")
        text = str(error)
        assert "//a[[" in text and "^" in text

    def test_dnf_budget_in_message(self):
        error = DNFError(budget=1000)
        assert "1000" in str(error)
        assert error.budget == 1000


class TestReporting:
    def test_empty_table(self):
        assert format_dict_table([]) == "(no rows)"

    def test_alignment(self):
        rows = [{"name": "x", "value": 1}, {"name": "longer", "value": 22}]
        text = format_dict_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:3])

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1, "b": 2}]
        text = format_dict_table(rows)
        assert "1" in text and "2" in text


class TestBenchCLI:
    def test_table1(self, capsys):
        assert bench_cli.main(["table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "d1" in out and "recursive?" in out

    def test_table2(self, capsys):
        assert bench_cli.main(["table2", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "selectivity" in out

    def test_table3_subset(self, capsys):
        assert bench_cli.main(["table3", "--scale", "0.05", "--repeat", "1",
                               "--datasets", "d2", "--counters"]) == 0
        out = capsys.readouterr().out
        assert "PL" in out and "XH" in out and "nodes scanned" in out

    def test_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            bench_cli.main(["table9"])
