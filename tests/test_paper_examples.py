"""The paper's worked examples, reproduced verbatim.

Each test cites the example/figure it reproduces; inputs and outputs
come straight from the paper text.
"""

import pytest

from repro.baseline import NaiveInterpreter
from repro.engine import Engine
from repro.pattern import assign_dewey, build_blossom_tree, decompose
from repro.physical import NoKMatcher, nested_loop_pairs
from repro.xmlkit import parse
from repro.xquery import parse_flwor
from tests.conftest import PAPER_QUERY


class TestExample1And2:
    """Example 1 (the book-pair FLWOR) against Example 2's document."""

    def expected(self):
        return ("<bib>"
                "<book-pair>"
                "<title> Maximum Security </title>"
                "<title> Terrorist Hunter </title>"
                "</book-pair>"
                "<book-pair>"
                "<title> The Art of Computer Programming </title>"
                "<title> TeX Book </title>"
                "</book-pair>"
                "</bib>")

    def test_naive_interpreter(self, paper_bib):
        result = NaiveInterpreter(paper_bib).run(PAPER_QUERY)
        assert result.serialize() == self.expected()

    @pytest.mark.parametrize("strategy",
                             ["pipelined", "caching", "stack", "bnlj", "auto"])
    def test_blossom_engine(self, paper_bib, strategy):
        engine = Engine(paper_bib)
        result = engine.query(PAPER_QUERY, strategy=strategy)
        assert result.serialize() == self.expected()

    def test_empty_authors_pair_via_deep_equal(self, paper_bib):
        """The paper highlights that the first book-pair exists because
        both $aut1 and $aut2 are empty sequences and deep-equal(empty,
        empty) is true."""
        result = Engine(paper_bib).query(PAPER_QUERY)
        first_pair = result.nodes()[0].children[0]
        assert "Maximum Security" in first_pair.string_value()


class TestFigure1:
    """The BlossomTree of Figure 1: vertices, blossoms, edge modes."""

    def test_structure(self):
        tree = build_blossom_tree(parse_flwor(PAPER_QUERY))
        blossom_vars = {v for vertex in tree.blossoms()
                        for v in vertex.variables}
        assert blossom_vars == {"book1", "book2", "aut1", "aut2"}
        # 2 structural-or-value crossing edges from where (<<, not-=)
        # plus the mixed deep-equal edge.
        kinds = sorted(e.kind for e in tree.crossing_edges)
        assert kinds == ["mixed", "structural", "value"]


class TestExample3And4:
    """NoK matching of Figure 3 and the NestedList notation of Figure 4."""

    def test_figure3_matchings(self, figure3_doc):
        # NoK pattern (a (b (d)) (c)) with b/d optional ("l").  We phrase
        # it as a FLWOR: optional author-style edges via let.
        flwor = parse_flwor(
            'for $a in doc("x")//a let $b := $a/b let $c := $a/c '
            "return $a")
        build_blossom_tree(flwor)
        # extend b with an optional d: let over $b
        flwor2 = parse_flwor(
            'for $a in doc("x")//a let $b := $a/b let $d := $b/d '
            "let $c := $a/c return $a")
        tree2 = build_blossom_tree(flwor2)
        dec = decompose(tree2)
        nok = next(n for n in dec.noks if n.root.name == "a")
        matches = NoKMatcher(nok, figure3_doc).matches()
        assert len(matches) == 2
        # Second a: three b's grouped, two c's... our figure encodes
        # b-d-c shape; check the grouping notation of Figure 4.
        second = matches[1]
        text = second.sexpr()
        assert "[" in text and "]" in text  # grouping occurred

    def test_figure4_notation_exact(self):
        """Build Figure 3(c)'s exact data and compare the rendered
        NestedList with Figure 4's string."""
        doc = parse("<a><b/><b><d/><d/></b><b><d/></b><c/><c/></a>")
        flwor = parse_flwor(
            'for $a in doc("x")/a let $b := $a/b let $d := $b/d '
            "let $c := $a/c return $a")
        tree = build_blossom_tree(flwor)
        dec = decompose(tree)
        nok = dec.noks[0]
        [match] = NoKMatcher(nok, doc).matches()
        a_entry = match.group_for(tree.var_vertex["a"])[0]

        counters = {}

        def label(node):
            counters[node.tag] = counters.get(node.tag, 0) + 1
            return f"{node.tag}{counters[node.tag]}"

        # Figure 4: (a1,[(b1,()),(b2,[(d1),(d2)]),(b3,(d3))],[(c1),(c2)])
        assert a_entry.sexpr(label) == \
            "(a1,[(b1,()),(b2,[(d1),(d2)]),(b3,(d3))],[(c1),(c2)])"

    def test_example4_join_result(self, paper_bib):
        """Example 4: the two-NoK plan joined with
        (t1 != t2) and deep-equal(a1, a2) yields the two book pairs."""
        engine = Engine(paper_bib)
        result = engine.query(
            'for $b1 in doc("x")//book, $b2 in doc("x")//book '
            "let $a1 := $b1/author let $a2 := $b2/author "
            "where $b1 << $b2 and not($b1/title = $b2/title) "
            "and deep-equal($a1, $a2) "
            "return <pair>{ $b1/title }{ $b2/title }</pair>",
            strategy="pipelined")
        assert len(result) == 2


class TestExample5:
    """Example 5: the <<-join destroys document order."""

    def test_projection_not_in_document_order(self, paper_bib):
        books = paper_bib.elements_by_tag("book")
        pairs = nested_loop_pairs(books, books,
                                  lambda x, y: x.nid < y.nid)
        projection = [y.nid for _, y in pairs]
        # The paper's sequence is [b2,b3,b4,b3,b4,b4] — not sorted.
        b = {node.nid: f"b{i+1}" for i, node in enumerate(books)}
        assert [b[nid] for nid in projection] == \
            ["b2", "b3", "b4", "b3", "b4", "b4"]
        assert projection != sorted(projection)


class TestSection33Dewey:
    """Section 3.3's global Dewey assignment for Example 1's tree."""

    def test_books_get_sibling_ids(self):
        tree = build_blossom_tree(parse_flwor(PAPER_QUERY))
        dewey = assign_dewey(tree)
        b1 = dewey.variable_dewey(tree, "book1")
        b2 = dewey.variable_dewey(tree, "book2")
        assert len(b1) == len(b2)
        assert b1[:-1] == b2[:-1]          # siblings in the returning tree
        assert b1[-1] + 1 == b2[-1]        # consecutive ordinals
        a1 = dewey.variable_dewey(tree, "aut1")
        assert a1[:len(b1)] == b1          # author below its book
