"""Unit tests for the XPath lexer and parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.xpath.ast import (
    AnyKindTest,
    BooleanExpr,
    Comparison,
    FunctionCall,
    Literal,
    LocationPath,
    NameTest,
    NotExpr,
    NumberLiteral,
    RootContext,
    RootDoc,
    RootVariable,
    TextTest,
)
from repro.xpath.lexer import NAME, STRING, SYMBOL, VARIABLE, tokenize_query
from repro.xpath.parser import parse_expr, parse_xpath


class TestLexer:
    def test_symbols_maximal_munch(self):
        kinds = [(t.kind, t.value) for t in tokenize_query("a//b << c != d")]
        values = [v for k, v in kinds if k == SYMBOL]
        assert values == ["//", "<<", "!="]

    def test_variable_token(self):
        tokens = tokenize_query("$book1/title")
        assert tokens[0].kind == VARIABLE and tokens[0].value == "book1"

    def test_string_literals_both_quotes(self):
        assert tokenize_query('"x"')[0].kind == STRING
        assert tokenize_query("'x'")[0].kind == STRING

    def test_hyphenated_names(self):
        tokens = tokenize_query("deep-equal(following-sibling::a)")
        assert tokens[0].value == "deep-equal"
        assert tokens[2].value == "following-sibling"

    def test_comment_skipped(self):
        tokens = tokenize_query("a (: comment (: nested :) :) / b")
        assert [t.value for t in tokens if t.kind == NAME] == ["a", "b"]

    def test_number(self):
        tokens = tokenize_query("3.25")
        assert tokens[0].value == "3.25"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query('"oops')

    def test_bad_dollar(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query("$ x")


class TestPathParsing:
    def test_descendant_steps(self):
        path = parse_xpath("//a//b")
        assert [s.axis for s in path.steps] == ["descendant", "descendant"]
        assert path.is_absolute()

    def test_child_steps(self):
        path = parse_xpath("/a/b/c")
        assert [s.axis for s in path.steps] == ["child"] * 3
        assert [s.test.name for s in path.steps] == ["a", "b", "c"]

    def test_doc_root(self):
        path = parse_xpath('doc("bib.xml")//book')
        assert isinstance(path.root, RootDoc)
        assert path.root.uri == "bib.xml"

    def test_variable_root(self):
        path = parse_xpath("$b/author")
        assert isinstance(path.root, RootVariable)
        assert path.root.name == "b"

    def test_bare_variable(self):
        path = parse_xpath("$b")
        assert isinstance(path.root, RootVariable) and not path.steps

    def test_attribute_step(self):
        path = parse_xpath("//book/@year")
        assert path.steps[-1].axis == "attribute"
        assert path.steps[-1].test.name == "year"

    def test_explicit_axes(self):
        path = parse_xpath("a/following-sibling::b/ancestor::c")
        assert [s.axis for s in path.steps] == [
            "child", "following-sibling", "ancestor"]

    def test_star_and_kind_tests(self):
        path = parse_xpath("//*/text()")
        assert path.steps[0].test == NameTest("*")
        assert isinstance(path.steps[1].test, TextTest)

    def test_dot_dot(self):
        path = parse_xpath("a/..")
        assert path.steps[1].axis == "parent"
        assert isinstance(path.steps[1].test, AnyKindTest)

    def test_double_slash_dot(self):
        path = parse_xpath("a//.")
        assert path.steps[1].axis == "descendant-or-self"

    def test_unknown_axis_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xpath("wrong::a")

    def test_trailing_junk_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xpath("//a )")

    def test_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xpath("")


class TestPredicates:
    def test_existential_predicate_is_relative_path(self):
        path = parse_xpath("//a[b/c]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, LocationPath)
        assert isinstance(predicate.root, RootContext)
        assert not predicate.root.absolute

    def test_leading_slash_predicate_stays_relative(self):
        # The paper's convention: //address[//zip] is "zip below address".
        path = parse_xpath("//address[//zip]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, LocationPath)
        assert not predicate.root.absolute

    def test_multiple_predicates(self):
        path = parse_xpath("//a[//b][//c][//d]")
        assert len(path.steps[0].predicates) == 3

    def test_comparison_predicate(self):
        path = parse_xpath('//book[author/last = "Knuth"]')
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, Comparison) and predicate.op == "="
        assert isinstance(predicate.right, Literal)

    def test_numeric_positional_predicate(self):
        path = parse_xpath("//book[2]")
        assert path.steps[0].predicates[0] == NumberLiteral(2.0)

    def test_boolean_connectives(self):
        path = parse_xpath("//a[b and c or d]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, BooleanExpr) and predicate.op == "or"
        assert isinstance(predicate.operands[0], BooleanExpr)

    def test_not_expression(self):
        path = parse_xpath("//a[not(b)]")
        assert isinstance(path.steps[0].predicates[0], NotExpr)

    def test_function_calls(self):
        path = parse_xpath('//a[contains(., "x") and position() <= last()]')
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, BooleanExpr)
        assert isinstance(predicate.operands[0], FunctionCall)

    def test_nested_predicates(self):
        path = parse_xpath("//a[b[c[d]]]")
        inner = path.steps[0].predicates[0]
        assert isinstance(inner, LocationPath)
        assert inner.steps[0].predicates


class TestExprParsing:
    def test_standalone_comparison(self):
        expr = parse_expr("$a << $b")
        assert isinstance(expr, Comparison) and expr.op == "<<"

    def test_deep_equal_call(self):
        expr = parse_expr("deep-equal($x, $y)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "deep-equal" and len(expr.args) == 2

    def test_parenthesized_grouping(self):
        expr = parse_expr("(a or b) and c")
        assert isinstance(expr, BooleanExpr) and expr.op == "and"

    def test_comparison_chain_rejected(self):
        # a = b = c is not in the grammar.
        with pytest.raises(QuerySyntaxError):
            parse_expr("a = b = c")

    def test_str_round_trip_reparses(self):
        for text in ["//a//b[c]", '//book[author/last = "x"]/title',
                     "$b/title", 'doc("d.xml")//a[@k = "v"]']:
            path = parse_xpath(text)
            again = parse_xpath(str(path))
            assert str(again) == str(path)
