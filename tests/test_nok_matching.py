"""Unit tests for NoK pattern matching (Algorithm 2) and merged scans."""

import pytest

from repro.algebra import project
from repro.pattern import build_from_path, decompose
from repro.physical import NoKMatcher, merged_scan
from repro.xmlkit import parse
from repro.xmlkit.storage import ScanCounters
from repro.xpath import parse_xpath
from repro.xquery import parse_flwor
from repro.pattern.build import build_blossom_tree


def single_nok(path_text):
    tree = build_from_path(parse_xpath(path_text))
    dec = decompose(tree)
    return tree, dec


class TestMatching:
    def test_root_pattern_matches_document_node(self, small_bib):
        tree, dec = single_nok("/bib/book")
        [nok] = dec.noks
        matches = NoKMatcher(nok, small_bib).matches()
        assert len(matches) == 1  # one document-node match
        book_vertex = tree.var_vertex["#result"]
        assert len(project(matches[0], book_vertex)) == 3

    def test_mandatory_child_prunes(self, small_bib):
        tree, dec = single_nok("//book/author")
        nok = next(n for n in dec.noks if n.root.name == "book")
        matches = NoKMatcher(nok, small_bib).matches()
        # Economics has no author: only two book matches.
        assert len(matches) == 2

    def test_value_predicate_filters(self, small_bib):
        tree, dec = single_nok('//book[@year = "2000"]')
        nok = next(n for n in dec.noks if n.root.name == "book")
        matches = NoKMatcher(nok, small_bib).matches()
        assert len(matches) == 1
        assert matches[0].node.attrs["year"] == "2000"

    def test_multiple_matches_grouped(self, small_bib):
        tree, dec = single_nok("//book/author/last")
        nok = next(n for n in dec.noks if n.root.name == "book")
        matches = NoKMatcher(nok, small_bib).matches()
        last_vertex = tree.var_vertex["#result"]
        per_book = [ [n.string_value() for n in project(m, last_vertex)]
                     for m in matches ]
        assert per_book == [["Stevens"], ["Abiteboul", "Buneman"]]

    def test_matches_emitted_in_document_order(self, recursive_doc):
        tree, dec = single_nok("//section")
        nok = next(n for n in dec.noks if n.root.name == "section")
        matches = NoKMatcher(nok, recursive_doc).matches()
        nids = [m.node.nid for m in matches]
        assert nids == sorted(nids)
        assert len(matches) == 4  # nested sections matched too

    def test_scan_counts_io(self, small_bib):
        counters = ScanCounters()
        tree, dec = single_nok("//book")
        nok = next(n for n in dec.noks if n.root.name == "book")
        NoKMatcher(nok, small_bib, counters).matches()
        assert counters.nodes_scanned == len(small_bib.nodes)
        assert counters.scans_started == 1

    def test_bounded_scan_range(self, small_bib):
        tree, dec = single_nok("//author")
        nok = next(n for n in dec.noks if n.root.name == "author")
        book2 = small_bib.elements_by_tag("book")[1]
        matcher = NoKMatcher(nok, small_bib, start_nid=book2.nid + 1,
                             stop_nid=book2.nid + book2.subtree_size())
        assert len(matcher.matches()) == 2  # only book 2's authors

    def test_iterator_form_is_lazy(self, small_bib):
        tree, dec = single_nok("//book")
        nok = next(n for n in dec.noks if n.root.name == "book")
        iterator = NoKMatcher(nok, small_bib).iter_matches()
        first = next(iterator)
        assert first.node.tag == "book"

    def test_optional_edges_keep_entry(self, paper_bib):
        # let-style optional author: books without authors still match.
        flwor = parse_flwor(
            'for $b in doc("x")//book let $a := $b/author return $b')
        tree = build_blossom_tree(flwor)
        dec = decompose(tree)
        nok = next(n for n in dec.noks if n.root.name == "book")
        matches = NoKMatcher(nok, paper_bib).matches()
        assert len(matches) == 4
        author_vertex = tree.var_vertex["a"]
        per_book = [len(project(m, author_vertex)) for m in matches]
        assert per_book == [0, 1, 0, 1]

    def test_following_sibling_constraint(self):
        # b only matches when it follows a matched a among the same
        # parent's children (the frontier-eligibility rule).
        doc = parse("<r><x><b/><a/></x><x><a/><b/></x></r>")
        tree = build_from_path(parse_xpath("//x/a/following-sibling::b"))
        dec = decompose(tree)
        nok = next(n for n in dec.noks if n.root.name == "x")
        matches = NoKMatcher(nok, doc).matches()
        # Only the second x has a b AFTER an a.
        assert len(matches) == 1
        b_vertex = tree.var_vertex["#result"]
        assert len(project(matches[0], b_vertex)) == 1

    def test_following_sibling_after_descendant_rejected(self):
        from repro.errors import CompileError
        with pytest.raises(CompileError):
            build_from_path(parse_xpath("//a/following-sibling::b"))

    def test_wildcard_tag(self, small_bib):
        tree, dec = single_nok("//book/*")
        nok = next(n for n in dec.noks if n.root.name == "book")
        matches = NoKMatcher(nok, small_bib).matches()
        star_vertex = tree.var_vertex["#result"]
        assert sum(len(project(m, star_vertex)) for m in matches) == 9


class TestMergedScan:
    def test_one_scan_for_many_noks(self, small_bib):
        tree, dec = single_nok("//book//last")
        counters = ScanCounters()
        results = merged_scan(dec.noks, small_bib, counters)
        # Root NoK matches the document node without scanning; the two
        # element NoKs share ONE pass.
        assert counters.scans_started == 1
        assert counters.nodes_scanned == len(small_bib.nodes)
        assert len(results) == len(dec.noks)

    def test_merged_equals_individual(self, small_bib, recursive_doc):
        for doc in (small_bib, recursive_doc):
            tree = build_from_path(parse_xpath("//book//last"))
            dec = decompose(tree)
            merged = merged_scan(dec.noks, doc)
            for nok in dec.noks:
                individual = NoKMatcher(nok, doc).matches()
                got = merged[nok.nok_id]
                assert [m.node.nid for m in got] == \
                    [m.node.nid for m in individual]

    def test_separate_scans_cost_double(self, small_bib):
        tree, dec = single_nok("//book//author")
        element_noks = [n for n in dec.noks if n.root.name != "#root"]
        assert len(element_noks) == 2
        separate = ScanCounters()
        for nok in element_noks:
            NoKMatcher(nok, small_bib, separate).matches()
        together = ScanCounters()
        merged_scan(element_noks, small_bib, together)
        assert separate.nodes_scanned == 2 * together.nodes_scanned
