"""Tests for the dataset generators and the Q1-Q6 workloads."""

import pytest

from repro.datagen import DATASETS, measure_selectivity
from repro.xmlkit import compute_stats, parse, serialize
from repro.xpath import evaluate_xpath

SCALE = 0.1


@pytest.fixture(scope="module")
def generated():
    return {name: spec.generate(scale=SCALE) for name, spec in DATASETS.items()}


class TestDeterminism:
    def test_same_seed_same_document(self):
        for spec in DATASETS.values():
            first = spec.generate(scale=0.02)
            second = spec.generate(scale=0.02)
            assert serialize(first.root) == serialize(second.root)

    def test_scale_controls_size(self):
        small = DATASETS["d5"].generate(scale=0.02)
        large = DATASETS["d5"].generate(scale=0.1)
        assert len(large.nodes) > 2 * len(small.nodes)


class TestTable1Signatures:
    """The structural signatures the generators must reproduce."""

    def test_recursiveness_flags(self, generated):
        for name, spec in DATASETS.items():
            stats = compute_stats(generated[name], with_size=False)
            assert stats.recursive == spec.recursive, name

    def test_d1_signature(self, generated):
        stats = compute_stats(generated["d1"], with_size=False)
        assert stats.n_distinct_tags == 8
        assert stats.max_depth <= 10
        assert stats.recursion_degree >= 2

    def test_d2_signature(self, generated):
        stats = compute_stats(generated["d2"], with_size=False)
        assert stats.n_distinct_tags == 7
        assert stats.max_depth == 3

    def test_d3_signature(self, generated):
        stats = compute_stats(generated["d3"], with_size=False)
        assert 30 <= stats.n_distinct_tags <= 55  # catalog-like alphabet
        assert 4 <= stats.max_depth <= 8

    def test_d4_signature(self, generated):
        stats = compute_stats(generated["d4"], with_size=False)
        assert stats.max_depth >= 15       # deep parse trees
        assert stats.recursion_degree >= 5

    def test_d5_signature(self, generated):
        stats = compute_stats(generated["d5"], with_size=False)
        assert stats.max_depth <= 6        # shallow, bushy
        assert 20 <= stats.n_distinct_tags <= 40

    def test_documents_parse_back(self, generated):
        # The generators build trees directly; they must serialize to
        # well-formed XML.
        for name, doc in generated.items():
            text = serialize(doc.root)
            assert parse(text).root.tag == doc.root.tag, name


class TestWorkload:
    def test_every_dataset_has_six_queries(self):
        for spec in DATASETS.values():
            assert [q.qid for q in spec.queries] == \
                ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]

    def test_queries_parse_and_run(self, generated):
        for name, spec in DATASETS.items():
            doc = generated[name]
            for query in spec.queries:
                evaluate_xpath(doc, query.text)  # must not raise

    def test_categories_follow_table2(self):
        for name, spec in DATASETS.items():
            if name == "d5":
                continue  # the paper assigns no categories to d5
            cats = [q.category for q in spec.queries]
            assert cats == ["hc", "hb", "mc", "mb", "lc", "lb"], name

    def test_selectivity_bands_ordered(self, generated):
        """Table 2's property: h < m < l selectivity per dataset, with
        the high band genuinely selective."""
        for name, spec in DATASETS.items():
            if name == "d5":
                continue
            doc = generated[name]
            n = compute_stats(doc, with_size=False).n_elements
            sel = {q.qid: measure_selectivity(doc, q.text, n)
                   for q in spec.queries}
            high = max(sel["Q1"], sel["Q2"])
            moderate = max(sel["Q3"], sel["Q4"])
            low = min(sel["Q5"], sel["Q6"])
            assert high < 0.02, name
            assert high < moderate, name
            assert moderate < low, name
            assert low > 0.08, name

    def test_queries_have_multiple_noks(self):
        """Section 5.1: every test query must decompose into at least
        two NoK subtrees (so joins are actually exercised)."""
        from repro.pattern import build_from_path, decompose
        from repro.xpath import parse_xpath
        for name, spec in DATASETS.items():
            for query in spec.queries:
                tree = build_from_path(parse_xpath(query.text))
                dec = decompose(tree)
                element_noks = [n for n in dec.noks if n.root.name != "#root"]
                assert len(element_noks) >= 2, (name, query.qid)

    def test_query_lookup(self):
        spec = DATASETS["d1"]
        assert spec.query("Q3").category == "mc"
        with pytest.raises(KeyError):
            spec.query("Q9")

    def test_topology_classes(self):
        # chain queries have no branching predicates; branching do.
        for name, spec in DATASETS.items():
            if name == "d5":
                continue
            for query in spec.queries:
                if query.topology == "b":
                    assert "[" in query.text, (name, query.qid)
