"""Unit tests for the FLWOR parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.xpath.ast import Comparison, FunctionCall, LocationPath, NotExpr
from repro.xquery import (
    ElementConstructor,
    Enclosed,
    FLWOR,
    ForClause,
    LetClause,
    Sequence,
    TextItem,
    parse_flwor,
    parse_query,
)


class TestClauses:
    def test_single_for(self):
        flwor = parse_flwor("for $b in //book return $b")
        assert len(flwor.clauses) == 1
        assert isinstance(flwor.clauses[0], ForClause)
        assert flwor.clauses[0].var == "b"

    def test_comma_separated_for_bindings(self):
        flwor = parse_flwor("for $a in //x, $b in //y return $a")
        assert [c.var for c in flwor.clauses] == ["a", "b"]
        assert all(isinstance(c, ForClause) for c in flwor.clauses)

    def test_let_clause(self):
        flwor = parse_flwor("for $b in //book let $a := $b/author return $a")
        assert isinstance(flwor.clauses[1], LetClause)
        assert isinstance(flwor.clauses[1].source, LocationPath)

    def test_interleaved_for_let(self):
        flwor = parse_flwor(
            "for $a in //x let $p := $a/b for $c in $p/d return $c")
        kinds = [type(c).__name__ for c in flwor.clauses]
        assert kinds == ["ForClause", "LetClause", "ForClause"]

    def test_where_clause(self):
        flwor = parse_flwor("for $b in //book where $b/price > 30 return $b")
        assert isinstance(flwor.where, Comparison)

    def test_where_with_node_comparison(self):
        flwor = parse_flwor(
            "for $a in //x, $b in //x where $a << $b return $a")
        assert flwor.where.op == "<<"

    def test_where_with_not_and_deep_equal(self):
        flwor = parse_flwor(
            "for $a in //x, $b in //y "
            "where not($a/t = $b/t) and deep-equal($a, $b) return $a")
        left, right = flwor.where.operands
        assert isinstance(left, NotExpr)
        assert isinstance(right, FunctionCall) and right.name == "deep-equal"

    def test_order_by(self):
        flwor = parse_flwor(
            "for $b in //book order by $b/title descending return $b/title")
        assert len(flwor.order_by) == 1
        assert flwor.order_by[0].descending

    def test_order_by_multiple_keys(self):
        flwor = parse_flwor(
            "for $b in //book order by $b/year, $b/title return $b")
        assert len(flwor.order_by) == 2
        assert not flwor.order_by[0].descending

    def test_keywords_inside_names_not_split(self):
        # 'information' contains 'for'; 'scores' contains 'or'.
        flwor = parse_flwor(
            "for $i in //contact_information return $i/scores")
        assert flwor.clauses[0].source.steps[0].test.name == "contact_information"


class TestConstructors:
    def test_top_level_constructor_with_flwor(self):
        expr = parse_query("<out>{ for $b in //x return $b }</out>")
        assert isinstance(expr, ElementConstructor)
        enclosed = expr.content[0]
        assert isinstance(enclosed, Enclosed)
        assert isinstance(enclosed.exprs[0], FLWOR)

    def test_nested_constructors(self):
        flwor = parse_flwor(
            "for $b in //x return <a><b>text</b>{ $b }</a>")
        ctor = flwor.return_expr
        assert isinstance(ctor, ElementConstructor) and ctor.tag == "a"
        inner = ctor.content[0]
        assert isinstance(inner, ElementConstructor) and inner.tag == "b"
        assert isinstance(inner.content[0], TextItem)

    def test_constructor_attributes(self):
        flwor = parse_flwor('for $b in //x return <a k="v" j="w"/>')
        assert flwor.return_expr.attrs == (("k", "v"), ("j", "w"))

    def test_multiple_enclosed_expressions(self):
        flwor = parse_flwor(
            "for $a in //x return <p>{ $a/t }{ $a/u }</p>")
        enclosed = [c for c in flwor.return_expr.content
                    if isinstance(c, Enclosed)]
        assert len(enclosed) == 2

    def test_comma_sequence_in_enclosed(self):
        flwor = parse_flwor(
            "for $a in //x return <p>{ $a/t, $a/u }</p>")
        enclosed = flwor.return_expr.content[0]
        assert len(enclosed.exprs) == 2

    def test_mismatched_constructor_tags(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("for $a in //x return <p></q>")

    def test_unterminated_constructor(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("for $a in //x return <p>")


class TestQueryShapes:
    def test_bare_path_query(self):
        expr = parse_query("//a[//b]//c")
        assert isinstance(expr, LocationPath)

    def test_bare_expression_query(self):
        expr = parse_query("count(//a)")
        assert isinstance(expr, FunctionCall)

    def test_parenthesized_sequence(self):
        expr = parse_query("(//a, //b)")
        assert isinstance(expr, Sequence) and len(expr.exprs) == 2

    def test_empty_sequence(self):
        expr = parse_query("()")
        assert isinstance(expr, Sequence) and not expr.exprs

    def test_parenthesized_boolean_is_not_sequence(self):
        expr = parse_query("(//a = //b) and //c")
        from repro.xpath.ast import BooleanExpr
        assert isinstance(expr, BooleanExpr)

    def test_parse_flwor_requires_flwor(self):
        with pytest.raises(QuerySyntaxError):
            parse_flwor("//just/a/path")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("for $a in //x return $a extra")

    def test_missing_return_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("for $a in //x where $a")

    def test_missing_in_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("for $a //x return $a")

    def test_xquery_comment(self):
        flwor = parse_flwor(
            "for $a in //x (: pick every x :) return $a")
        assert flwor.clauses[0].var == "a"

    def test_paper_example1_full(self):
        query = '''
        <bib>{
          for $b1 in doc("bib.xml")//book, $b2 in doc("bib.xml")//book
          let $a1 := $b1/author
          let $a2 := $b2/author
          where $b1 << $b2 and not($b1/title = $b2/title)
                and deep-equal($a1, $a2)
          return <book-pair>{ $b1/title }{ $b2/title }</book-pair>
        }</bib>
        '''
        flwor = parse_flwor(query)
        assert len(flwor.for_clauses()) == 2
        assert len(flwor.let_clauses()) == 2
        assert flwor.return_expr.tag == "book-pair"
