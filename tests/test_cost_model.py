"""Tests for the Section-6 cost model and the ``cost`` strategy."""

import pytest

from repro.datagen import DATASETS
from repro.engine import Engine
from repro.engine.cost import INFINITE, CostModel
from repro.pattern import build_from_path
from repro.xmlkit import compute_stats
from repro.xpath import parse_xpath
from repro.xquery import parse_flwor
from repro.pattern.build import build_blossom_tree


@pytest.fixture(scope="module")
def flat():
    doc = DATASETS["d2"].generate(scale=0.1)
    return doc, compute_stats(doc, with_size=False)


@pytest.fixture(scope="module")
def deep():
    doc = DATASETS["d4"].generate(scale=0.1)
    return doc, compute_stats(doc, with_size=False)


class TestEstimates:
    def test_twigstack_wins_on_selective_queries(self, flat):
        doc, stats = flat
        model = CostModel(doc, stats)
        tree = build_from_path(parse_xpath("//address//country_id"))
        best = model.choose(tree)
        assert best.strategy == "twigstack"
        # stream sizes are tiny compared to a full scan
        assert best.cost < len(doc.nodes) / 3

    def test_scan_wins_on_unselective_queries(self, flat):
        doc, stats = flat
        model = CostModel(doc, stats)
        # address + street_address streams cover most of the document.
        tree = build_from_path(parse_xpath(
            "//address[//street_address][//zip_code][//name_of_city]"))
        ranked = model.rank(tree)
        assert ranked[0].strategy in ("pipelined", "twigstack")
        # naive NL is always ranked dead last among finite options.
        finite = [e for e in ranked if e.cost != INFINITE]
        assert finite[-1].strategy in ("nl", "xhive")

    def test_pipelined_inapplicable_on_recursive(self, deep):
        doc, stats = deep
        model = CostModel(doc, stats)
        tree = build_from_path(parse_xpath("//VP//NP"))
        names = {e.strategy for e in model.rank(tree)}
        assert "stack" in names and "pipelined" not in names

    def test_twigstack_infinite_for_non_twig(self, flat):
        doc, stats = flat
        model = CostModel(doc, stats)
        tree = build_blossom_tree(parse_flwor(
            "for $a in //address let $z := $a/zip_code return $a"))
        twig = next(e for e in model.rank(tree) if e.strategy == "twigstack")
        assert twig.cost == INFINITE

    def test_recursion_inflates_bnlj(self, flat, deep):
        flat_doc, flat_stats = flat
        deep_doc, deep_stats = deep
        flat_tree = build_from_path(parse_xpath("//address//zip_code"))
        deep_tree = build_from_path(parse_xpath("//VP//NP"))
        flat_cost = next(e for e in CostModel(flat_doc, flat_stats).rank(flat_tree)
                         if e.strategy == "bnlj").cost
        deep_cost = next(e for e in CostModel(deep_doc, deep_stats).rank(deep_tree)
                         if e.strategy == "bnlj").cost
        # per-node rescan volume is far larger on the deep recursive data
        assert deep_cost / len(deep_doc.nodes) > flat_cost / len(flat_doc.nodes)

    def test_estimates_sorted(self, flat):
        doc, stats = flat
        model = CostModel(doc, stats)
        ranked = model.rank(build_from_path(parse_xpath("//address//zip_code")))
        costs = [e.cost for e in ranked]
        assert costs == sorted(costs)

    def test_str_rendering(self, flat):
        doc, stats = flat
        estimate = CostModel(doc, stats).choose(
            build_from_path(parse_xpath("//address//country_id")))
        assert "twigstack" in str(estimate)


class TestCostStrategy:
    @pytest.mark.parametrize("name", ["d2", "d4"])
    def test_cost_strategy_matches_oracle(self, name):
        spec = DATASETS[name]
        doc = spec.generate(scale=0.08)
        engine = Engine(doc)
        for query in spec.queries:
            reference = engine.query(query.text, strategy="naive")
            got = engine.query(query.text, strategy="cost")
            assert got.serialize() == reference.serialize(), query.qid
            assert "cost model" in engine.last_plan

    def test_cost_on_flwor(self, flat):
        doc, _ = flat
        engine = Engine(doc)
        query = ("for $a in //address, $z in $a/zip_code "
                 "return <r>{ $z }</r>")
        reference = engine.query(query, strategy="naive")
        got = engine.query(query, strategy="cost")
        assert got.serialize() == reference.serialize()
        # twigstack is never chosen for a FLWOR, even if cheapest.
        assert "twigstack" not in engine.last_plan

    def test_cost_falls_back_when_uncompilable(self, flat):
        doc, _ = flat
        engine = Engine(doc)
        result = engine.query("//address[2]", strategy="cost")
        assert len(result) == 1
        assert "naive" in engine.last_plan


class TestExactSubtreeStatistics:
    def test_stats_carry_per_tag_averages(self, flat):
        doc, stats = flat
        # every address subtree: address + ~4 leaf children (+ text)
        avg = stats.avg_subtree_size("address")
        assert 5 <= avg <= 12
        assert stats.avg_subtree_size("unknown_tag") == float(stats.n_nodes)

    def test_leaf_tags_have_small_subtrees(self, flat):
        _, stats = flat
        assert stats.avg_subtree_size("zip_code") <= 3

    def test_model_uses_exact_statistic(self, deep):
        doc, stats = deep
        from repro.pattern import build_from_path
        from repro.xpath import parse_xpath
        model = CostModel(doc, stats)
        tree = build_from_path(parse_xpath("//VP//NN"))
        bnlj = next(e for e in model.rank(tree) if e.strategy == "bnlj")
        # predicted rescan volume = |VP| * avg_subtree(VP) + scan
        expected = len(doc.nodes) + \
            stats.tag_histogram["VP"] * stats.avg_subtree_size("VP")
        assert bnlj.cost == pytest.approx(expected)
