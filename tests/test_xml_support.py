"""Unit tests for serialization, labeling, stats, index, storage, SAX."""

import pytest

from repro.errors import DNFError, XMLSyntaxError
from repro.xmlkit import (
    ScanCounters,
    SequentialScan,
    TagIndex,
    compute_stats,
    parse,
    pretty,
    region_of,
    serialize,
)
from repro.xmlkit.labeling import (
    Region,
    axis_predicate,
    before,
    contains,
    following,
    is_parent,
    preceding,
)
from repro.xmlkit.sax import ContentHandler, parse_string


class TestSerialize:
    def test_round_trip(self, small_bib):
        text = serialize(small_bib.root)
        again = parse(text)
        assert serialize(again.root) == text

    def test_escaping(self):
        doc = parse("<a x=\"&quot;q&quot;\">a &lt; b &amp; c</a>")
        out = serialize(doc.root)
        assert "&lt;" in out and "&amp;" in out and "&quot;" in out
        assert serialize(parse(out).root) == out

    def test_empty_element_short_form(self):
        assert serialize(parse("<a><b></b></a>").root) == "<a><b/></a>"

    def test_pretty_is_reparsable(self, small_bib):
        text = pretty(small_bib.root)
        assert parse(text).root.tag == "bib"

    def test_pretty_inlines_text_only_elements(self):
        out = pretty(parse("<a><b>hi</b></a>").root)
        assert "<b>hi</b>" in out


class TestLabeling:
    def test_region_ordering_is_document_order(self, small_bib):
        regions = [region_of(n) for n in small_bib.nodes]
        assert regions == sorted(regions)

    def test_containment(self, small_bib):
        bib = region_of(small_bib.root)
        book = region_of(small_bib.elements_by_tag("book")[0])
        last = region_of(small_bib.elements_by_tag("last")[0])
        assert contains(bib, book) and contains(bib, last)
        assert is_parent(bib, book)
        assert not is_parent(bib, last)
        assert not contains(book, bib)

    def test_order_predicates(self, small_bib):
        b0 = region_of(small_bib.elements_by_tag("book")[0])
        b1 = region_of(small_bib.elements_by_tag("book")[1])
        bib = region_of(small_bib.root)
        assert before(b0, b1) and not before(b1, b0)
        assert preceding(b0, b1)          # disjoint
        assert not preceding(bib, b0)     # ancestor overlaps
        assert before(bib, b0)            # but << holds for ancestors
        assert following(b1, b0)

    def test_axis_predicate_lookup(self):
        up = Region(0, 9, 0)
        down = Region(1, 2, 1)
        assert axis_predicate("descendant")(up, down)
        assert axis_predicate("child")(up, down)
        assert axis_predicate("ancestor")(down, up)
        with pytest.raises(KeyError):
            axis_predicate("attribute")


class TestStats:
    def test_small_bib_stats(self, small_bib):
        stats = compute_stats(small_bib)
        assert stats.n_elements == 17
        assert stats.max_depth == 4
        assert stats.n_distinct_tags == 7
        assert not stats.recursive
        assert stats.recursion_degree == 1
        assert stats.serialized_bytes > 0

    def test_recursion_detection(self, recursive_doc):
        stats = compute_stats(recursive_doc, with_size=False)
        assert stats.recursive
        assert stats.recursion_degree == 3  # section within section within section

    def test_tag_histogram(self, small_bib):
        stats = compute_stats(small_bib, with_size=False)
        assert stats.tag_histogram["book"] == 3
        assert stats.tag_histogram["author"] == 3

    def test_table1_row_shape(self, small_bib):
        row = compute_stats(small_bib).table1_row("x")
        assert row["recursive?"] == "N"
        assert row["|tags|"] == 7


class TestTagIndex:
    def test_streams_are_document_ordered(self, small_bib):
        index = TagIndex(small_bib)
        stream = index.stream("author")
        seen = []
        while not stream.eof():
            seen.append(stream.head().nid)
            stream.advance()
        assert seen == sorted(seen)
        assert len(seen) == 3

    def test_has_and_cardinality(self, small_bib):
        index = TagIndex(small_bib)
        assert index.has("book") and not index.has("nothing")
        assert index.cardinality("book") == 3

    def test_skip_to_start(self, small_bib):
        index = TagIndex(small_bib)
        books = index.nodes("book")
        stream = index.stream("book")
        stream.skip_to_start(books[1].start)
        assert stream.head() is books[1]
        stream.skip_to_start(books[2].start + 1)
        assert stream.eof()

    def test_invalidate(self, small_bib):
        index = TagIndex(small_bib)
        assert index.has("book")
        index.invalidate()
        assert index.has("book")  # rebuilt on demand

    def test_clone_is_independent(self, small_bib):
        index = TagIndex(small_bib)
        stream = index.stream("book")
        clone = stream.clone()
        stream.advance()
        assert clone.pos == 0 and stream.pos == 1


class TestSequentialScan:
    def test_counts_every_node(self, small_bib):
        counters = ScanCounters()
        elements = list(SequentialScan(small_bib, counters))
        assert counters.nodes_scanned == len(small_bib.nodes)
        assert counters.scans_started == 1
        assert all(e.kind == 1 for e in elements)

    def test_range_scan(self, small_bib):
        book = small_bib.elements_by_tag("book")[1]
        counters = ScanCounters()
        scan = SequentialScan(small_bib, counters, book.nid,
                              book.nid + book.subtree_size())
        tags = [n.tag for n in scan]
        assert tags[0] == "book"
        assert "author" in tags

    def test_budget_raises_dnf(self, small_bib):
        counters = ScanCounters(budget=5)
        with pytest.raises(DNFError):
            list(SequentialScan(small_bib, counters))

    def test_note_buffer_tracks_peak(self):
        counters = ScanCounters()
        counters.note_buffer(3)
        counters.note_buffer(1)
        assert counters.peak_buffered == 3
        assert counters.snapshot()["peak_buffered"] == 3


class _Recorder(ContentHandler):
    def __init__(self):
        self.events = []

    def start_document(self):
        self.events.append("start-doc")

    def end_document(self):
        self.events.append("end-doc")

    def start_element(self, tag, attrs):
        self.events.append(("s", tag, dict(attrs)))

    def end_element(self, tag):
        self.events.append(("e", tag))

    def characters(self, text):
        if text.strip():
            self.events.append(("t", text))


class TestSAX:
    def test_event_sequence(self):
        handler = _Recorder()
        parse_string('<a x="1"><b>hi</b></a>', handler)
        assert handler.events == [
            "start-doc", ("s", "a", {"x": "1"}), ("s", "b", {}),
            ("t", "hi"), ("e", "b"), ("e", "a"), "end-doc"]

    def test_well_formedness_enforced(self):
        with pytest.raises(XMLSyntaxError):
            parse_string("<a><b></a>", _Recorder())
        with pytest.raises(XMLSyntaxError):
            parse_string("<a/><b/>", _Recorder())
        with pytest.raises(XMLSyntaxError):
            parse_string("", _Recorder())
