"""Shared fixtures: the paper's example documents and small corpora."""

from __future__ import annotations

import pytest

from repro.xmlkit import parse


@pytest.fixture(autouse=True)
def _verify_every_compiled_plan(monkeypatch):
    """Run the invariant analyzer over every artifact bundle the suite
    builds.

    The engine already verifies trees at compile time and plans before
    caching; this fixture closes the remaining gap by wrapping
    ``prepare_artifacts`` where the engine calls it, so any test that
    drives the executor also exercises the decomposition/Dewey/plan
    passes.  A suite-wide invariant regression then fails loudly at its
    source instead of as a wrong query result three layers later.
    """
    import repro.engine.executor as executor_mod
    import repro.engine.session as session_mod
    from repro.analysis import analyze_artifacts, analyze_tree
    from repro.analysis.passes import artifacts_quick_clean, tree_quick_clean
    from repro.errors import PlanInvariantError
    from repro.pattern.artifact import prepare_artifacts

    def prepare_and_verify(tree):
        artifacts = prepare_artifacts(tree)
        # Full reporting passes AND the verify gates' fused fast path:
        # the two implementations must agree on every artifact bundle
        # the suite ever builds, or the fast path has drifted.
        report = analyze_tree(artifacts.tree)
        report.extend(analyze_artifacts(artifacts, tree_verified=True))
        quick = tree_quick_clean(artifacts.tree) \
            and artifacts_quick_clean(artifacts)
        assert quick == report.clean, (
            "fast-path/full-pass disagreement:\n" + report.format())
        if not report.clean:
            raise PlanInvariantError(report)
        return artifacts

    monkeypatch.setattr(session_mod, "prepare_artifacts", prepare_and_verify)
    monkeypatch.setattr(executor_mod, "prepare_artifacts", prepare_and_verify)

#: The document of the paper's Example 2 (whitespace matters for
#: deep-equal tests, so it is kept exactly as printed).
PAPER_BIB = """\
<bib>
<book>
<title> Maximum Security </title>
</book>
<book>
<title> The Art of Computer Programming </title>
<author>
<last> Knuth </last>
<first> Donald </first>
</author>
</book>
<book>
<title> Terrorist Hunter </title>
</book>
<book>
<title> TeX Book </title>
<author>
<last> Knuth </last>
<first> Donald </first>
</author>
</book>
</bib>
"""

#: The FLWOR of the paper's Example 1.
PAPER_QUERY = """
<bib>
{
for $book1 in doc("bib.xml")//book,
    $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return
  <book-pair>
    { $book1/title }
    { $book2/title }
  </book-pair>
}
</bib>
"""

#: A small bibliography with values, attributes and a book without
#: authors — convenient for predicate tests.
SMALL_BIB = """\
<bib>
 <book year="1994"><title>TCP/IP Illustrated</title>
   <author><last>Stevens</last><first>W.</first></author>
   <price>65.95</price></book>
 <book year="2000"><title>Data on the Web</title>
   <author><last>Abiteboul</last></author>
   <author><last>Buneman</last></author>
   <price>39.95</price></book>
 <book year="1999"><title>Economics</title><price>29.99</price></book>
</bib>
"""

#: The XML tree of the paper's Figure 3(b): a1 with children
#: (b1, c1, a1') where a1' ... actually the figure shows one a with
#: b1 c1 and a second a with b2[d1 d2] c2 b3[d3].  We encode the figure
#: faithfully: see tests/test_paper_examples.py.
FIGURE3_TREE = """\
<r>
 <a>
  <b/>
  <c/>
 </a>
 <a>
  <b><d/><d/></b>
  <c/>
  <b><d/></b>
 </a>
</r>
"""

#: A recursive document: sections nest inside sections.
RECURSIVE_DOC = """\
<doc>
 <section id="1">
  <title>one</title>
  <section id="1.1">
   <title>one-one</title>
   <section id="1.1.1"><title>deep</title><para>x</para></section>
  </section>
  <para>y</para>
 </section>
 <section id="2">
  <title>two</title>
  <para>z</para>
 </section>
</doc>
"""


@pytest.fixture
def paper_bib():
    return parse(PAPER_BIB)


@pytest.fixture
def small_bib():
    return parse(SMALL_BIB)


@pytest.fixture
def recursive_doc():
    return parse(RECURSIVE_DOC)


@pytest.fixture
def figure3_doc():
    return parse(FIGURE3_TREE)
