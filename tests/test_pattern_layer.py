"""Unit tests for BlossomTree construction, decomposition and Dewey IDs."""

import pytest

from repro.errors import CompileError
from repro.pattern import (
    MODE_MANDATORY,
    MODE_OPTIONAL,
    assign_dewey,
    build_blossom_tree,
    build_from_path,
    decompose,
)
from repro.xpath import parse_xpath
from repro.xquery import parse_flwor

EXAMPLE1 = """
for $book1 in doc("bib.xml")//book, $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2 and not($book1/title = $book2/title)
      and deep-equal($aut1, $aut2)
return <p>{ $book1/title }{ $book2/title }</p>
"""


class TestBuildFromFLWOR:
    def test_example1_shape_matches_figure1(self):
        tree = build_blossom_tree(parse_flwor(EXAMPLE1))
        # One shared document root, two book blossoms below it.
        assert len(tree.roots) == 1
        root = tree.roots[0]
        books = root.children()
        assert [v.name for v in books] == ["book", "book"]
        assert tree.var_vertex["book1"] is books[0]
        assert tree.var_vertex["book2"] is books[1]
        # for-edges are mandatory; let-(author) edges optional.
        assert all(e.mode == MODE_MANDATORY for e in root.child_edges)
        aut1 = tree.var_vertex["aut1"]
        assert aut1.parent_edge.parent is books[0]
        assert aut1.parent_edge.mode == MODE_OPTIONAL
        # Crossing edges: <<, not(=) on titles, deep-equal on authors.
        relations = {(e.relation, e.negated) for e in tree.crossing_edges}
        assert ("<<", False) in relations
        assert ("=", True) in relations
        assert ("deep-equal", False) in relations

    def test_crossing_edge_endpoints_are_title_vertices(self):
        tree = build_blossom_tree(parse_flwor(EXAMPLE1))
        eq_edge = next(e for e in tree.crossing_edges if e.relation == "=")
        assert eq_edge.u.name == "title" and eq_edge.v.name == "title"
        assert eq_edge.u.parent_edge.parent is tree.var_vertex["book1"]
        assert eq_edge.v.parent_edge.parent is tree.var_vertex["book2"]

    def test_fresh_chains_never_shared(self):
        # Both clauses navigate $b/author; each gets its own vertex so
        # one clause's pruning cannot corrupt the other's binding.
        flwor = parse_flwor(
            "for $b in //book let $x := $b/author let $y := $b/author "
            "return $x")
        tree = build_blossom_tree(flwor)
        assert tree.var_vertex["x"] is not tree.var_vertex["y"]

    def test_variable_aliasing_rejected(self):
        with pytest.raises(CompileError):
            build_blossom_tree(parse_flwor(
                "for $a in //x let $b := $a return $b"))

    def test_unbound_variable_rejected(self):
        with pytest.raises(CompileError):
            build_blossom_tree(parse_flwor(
                "for $a in $nothing/x return $a"))

    def test_positional_predicate_rejected(self):
        with pytest.raises(CompileError):
            build_blossom_tree(parse_flwor(
                "for $a in //x[2] return $a"))
        with pytest.raises(CompileError):
            build_blossom_tree(parse_flwor(
                "for $a in //x[position() = 1] return $a"))

    def test_parent_axis_rejected(self):
        with pytest.raises(CompileError):
            build_blossom_tree(parse_flwor(
                "for $a in //x/.. return $a"))

    def test_literal_prune_on_for_variable(self):
        flwor = parse_flwor(
            'for $b in //book where $b/price > 30 return $b')
        tree = build_blossom_tree(flwor)
        book = tree.var_vertex["b"]
        # A mandatory pruning chain with the value constraint was added.
        price_edges = [e for e in book.child_edges if e.child.name == "price"]
        assert price_edges and price_edges[0].mode == MODE_MANDATORY
        assert price_edges[0].child.value_predicates
        # The conjunct is still re-verified (kept in residual).
        assert tree.residual_where

    def test_literal_prune_not_applied_to_let(self):
        flwor = parse_flwor(
            'for $x in //shop let $b := $x/book '
            'where $b/price > 30 return $b')
        tree = build_blossom_tree(flwor)
        b = tree.var_vertex["b"]
        # let-bound: no mandatory pruning chain may shrink the sequence.
        assert all(e.mode != MODE_MANDATORY for e in b.child_edges)

    def test_local_value_predicates_attach(self):
        tree = build_from_path(parse_xpath('//book[@year = "2000"]'))
        book = tree.var_vertex["#result"]
        assert book.value_predicates

    def test_existential_predicate_becomes_subtree(self):
        tree = build_from_path(parse_xpath("//a[b/c]"))
        a = tree.var_vertex["#result"]
        b = a.children()[0]
        assert b.name == "b" and not b.returning
        assert b.parent_edge.mode == MODE_MANDATORY
        assert b.children()[0].name == "c"


class TestDecompose:
    def test_chain_of_descendants(self):
        tree = build_from_path(parse_xpath("//a//b//c"))
        dec = decompose(tree)
        # #root, a, b, c each become their own NoK.
        assert len(dec.noks) == 4
        assert len(dec.inter_edges) == 3
        assert all(e.axis == "descendant" for e in dec.inter_edges)

    def test_child_steps_stay_in_one_nok(self):
        tree = build_from_path(parse_xpath("/a/b/c"))
        dec = decompose(tree)
        assert len(dec.noks) == 1
        assert not dec.inter_edges
        assert [v.name for v in dec.noks[0].vertices] == ["#root", "a", "b", "c"]

    def test_mixed_query(self):
        tree = build_from_path(parse_xpath("//a/b[c]//d/e"))
        dec = decompose(tree)
        names = {tuple(v.name for v in nok.vertices) for nok in dec.noks}
        assert ("a", "b", "c") in names
        assert ("d", "e") in names

    def test_nok_membership_map(self):
        tree = build_from_path(parse_xpath("//a/b//c"))
        dec = decompose(tree)
        for nok in dec.noks:
            for vertex in nok.vertices:
                assert dec.nok_of(vertex) is nok

    def test_doc_uri_on_root_noks(self):
        tree = build_blossom_tree(parse_flwor(
            'for $a in doc("one.xml")//x, $b in doc("two.xml")//y return $a'))
        dec = decompose(tree)
        uris = {n.doc_uri for n in dec.root_noks()}
        assert uris == {"one.xml", "two.xml"}

    def test_example5_counts(self):
        # Figure 1's BlossomTree: root NoK + 2 book NoKs.
        tree = build_blossom_tree(parse_flwor(EXAMPLE1))
        dec = decompose(tree)
        assert len(dec.noks) == 3
        assert len(dec.inter_edges) == 2


class TestDewey:
    def test_example_assignment_matches_paper(self):
        # Section 3.3 assigns $b1=1.1, $b2=1.2, $aut1=1.1.1 ... modulo
        # the artificial super-root; with a shared document-root vertex
        # our IDs gain one extra level: root=1.1, books 1.1.1 / 1.1.2.
        tree = build_blossom_tree(parse_flwor(EXAMPLE1))
        dewey = assign_dewey(tree)
        assert dewey.dewey(tree.roots[0]) == (1, 1)
        b1 = dewey.variable_dewey(tree, "book1")
        b2 = dewey.variable_dewey(tree, "book2")
        a1 = dewey.variable_dewey(tree, "aut1")
        assert b1 == (1, 1, 1) and b2 == (1, 1, 2)
        assert a1 == b1 + (1,)

    def test_returning_tree_skips_non_returning(self):
        # //a[b/c]//d : b and c are existential, d is returning; d's
        # Dewey parent is a.
        tree = build_from_path(parse_xpath("//a[b/c]//d"))
        dewey = assign_dewey(tree)
        a = tree.var_vertex["#result"].parent_edge.parent
        d = tree.var_vertex["#result"]
        assert dewey.returning_parent[d.vid] == a.vid

    def test_format(self):
        tree = build_from_path(parse_xpath("//a"))
        dewey = assign_dewey(tree)
        a = tree.var_vertex["#result"]
        assert dewey.format(dewey.dewey(a)) == "1.1.1"

    def test_vertex_lookup_roundtrip(self):
        tree = build_blossom_tree(parse_flwor(EXAMPLE1))
        dewey = assign_dewey(tree)
        for vid, dew in dewey.of_vertex.items():
            assert dewey.vertex_of[dew].vid == vid
