"""Unit tests for the reference navigational XPath evaluator."""

import math

import pytest

from repro.errors import ExecutionError
from repro.xmlkit import parse
from repro.xpath import evaluate_xpath, parse_expr
from repro.xpath.evaluator import (
    AttrNode,
    EvalContext,
    XPathEvaluator,
    boolean_value,
)


def values(doc, query):
    return [n.string_value().strip() for n in evaluate_xpath(doc, query)]


class TestAxes:
    def test_child_and_descendant(self, small_bib):
        assert len(evaluate_xpath(small_bib, "/bib/book")) == 3
        assert len(evaluate_xpath(small_bib, "//last")) == 3
        assert len(evaluate_xpath(small_bib, "/bib//last")) == 3

    def test_descendant_or_self_combo(self, recursive_doc):
        # //section//section finds nested sections only.
        nested = evaluate_xpath(recursive_doc, "//section//section")
        assert [n.attrs["id"] for n in nested] == ["1.1", "1.1.1"]

    def test_parent_axis(self, small_bib):
        parents = evaluate_xpath(small_bib, "//last/../..")
        assert {p.tag for p in parents} == {"book"}

    def test_following_sibling(self, small_bib):
        siblings = evaluate_xpath(small_bib, "//book[1]/following-sibling::book")
        assert len(siblings) == 2

    def test_ancestor(self, small_bib):
        ancestors = evaluate_xpath(small_bib, "//last/ancestor::book")
        assert len(ancestors) == 2  # two books contain last elements

    def test_preceding_following(self, small_bib):
        books = evaluate_xpath(small_bib, "//book")
        following = evaluate_xpath(small_bib, "//book[1]/following::price")
        assert len(following) == 2
        preceding = evaluate_xpath(small_bib, "//book[3]/preceding::title")
        assert len(preceding) == 2
        assert all(b.tag == "book" for b in books)

    def test_attribute_axis(self, small_bib):
        years = evaluate_xpath(small_bib, "//book/@year")
        assert [a.value for a in years] == ["1994", "2000", "1999"]
        assert all(isinstance(a, AttrNode) for a in years)

    def test_text_nodes(self, small_bib):
        texts = evaluate_xpath(small_bib, "//title/text()")
        assert "Economics" in [t.string_value() for t in texts]

    def test_star(self, small_bib):
        children = evaluate_xpath(small_bib, "/bib/book/*")
        assert {c.tag for c in children} == {"title", "author", "price"}

    def test_results_deduped_and_ordered(self, recursive_doc):
        # //section//title would find nested titles through multiple
        # ancestors; duplicates must collapse.
        titles = evaluate_xpath(recursive_doc, "//section//title")
        nids = [t.nid for t in titles]
        assert nids == sorted(set(nids))


class TestPredicates:
    def test_positional(self, small_bib):
        assert values(small_bib, "//book[2]/title") == ["Data on the Web"]
        assert values(small_bib, "//book[position()=3]/title") == ["Economics"]
        assert values(small_bib, "//book[last()]/title") == ["Economics"]

    def test_positional_is_per_context(self, small_bib):
        # author[1] selects the first author of EACH book.
        firsts = values(small_bib, "//book/author[1]/last")
        assert firsts == ["Stevens", "Abiteboul"]

    def test_value_comparisons(self, small_bib):
        assert values(small_bib, "//book[price > 40]/title") == ["TCP/IP Illustrated"]
        assert values(small_bib, "//book[price <= 30]/title") == ["Economics"]
        assert values(small_bib, '//book[@year = "2000"]/title') == ["Data on the Web"]
        assert values(small_bib, '//book[@year != "2000"][price < 66]/title') == \
            ["TCP/IP Illustrated", "Economics"]

    def test_existential_comparison_over_node_set(self, small_bib):
        # A book with ANY author named Buneman.
        assert values(small_bib, '//book[author/last = "Buneman"]/title') == \
            ["Data on the Web"]

    def test_not_and_boolean_mix(self, small_bib):
        assert values(small_bib, "//book[not(author)]/title") == ["Economics"]
        assert values(small_bib, "//book[author and price > 50]/title") == \
            ["TCP/IP Illustrated"]
        assert values(small_bib, "//book[not(author) or price > 50]/title") == \
            ["TCP/IP Illustrated", "Economics"]

    def test_functions(self, small_bib):
        assert values(small_bib, "//book[count(author) >= 2]/title") == \
            ["Data on the Web"]
        assert values(small_bib, '//title[contains(., "Web")]') == ["Data on the Web"]
        assert values(small_bib, '//title[starts-with(., "TCP")]') == \
            ["TCP/IP Illustrated"]
        assert values(small_bib, "//book[empty(author)]/title") == ["Economics"]
        assert values(small_bib, "//book[exists(author)]/title") == \
            ["TCP/IP Illustrated", "Data on the Web"]

    def test_dot_comparison(self, small_bib):
        assert values(small_bib, '//last[. = "Stevens"]') == ["Stevens"]


class TestExpressions:
    def _eval(self, doc, text, variables=None):
        evaluator = XPathEvaluator()
        context = EvalContext(doc.document_node, variables=dict(variables or {}),
                              resolve_doc=lambda uri: doc)
        return evaluator.evaluate(parse_expr(text), context)

    def test_count(self, small_bib):
        assert self._eval(small_bib, "count(//author)") == 3.0

    def test_node_order_comparisons(self, small_bib):
        books = small_bib.elements_by_tag("book")
        variables = {"a": [books[0]], "b": [books[1]]}
        assert self._eval(small_bib, "$a << $b", variables) is True
        assert self._eval(small_bib, "$a >> $b", variables) is False
        assert self._eval(small_bib, "$a is $a", variables) is True
        assert self._eval(small_bib, "$a isnot $b", variables) is True

    def test_order_comparison_requires_single_node(self, small_bib):
        books = small_bib.elements_by_tag("book")
        with pytest.raises(ExecutionError):
            self._eval(small_bib, "$a << $b",
                       {"a": [books[0], books[1]], "b": [books[2]]})

    def test_order_comparison_empty_is_false(self, small_bib):
        assert self._eval(small_bib, "$a << $b",
                          {"a": [], "b": [small_bib.root]}) is False

    def test_deep_equal_function(self, paper_bib):
        authors = paper_bib.elements_by_tag("author")
        assert self._eval(paper_bib, "deep-equal($x, $y)",
                          {"x": [authors[0]], "y": [authors[1]]}) is True
        assert self._eval(paper_bib, "deep-equal($x, $y)",
                          {"x": [], "y": []}) is True
        assert self._eval(paper_bib, "deep-equal($x, $y)",
                          {"x": [authors[0]], "y": []}) is False

    def test_string_and_number(self, small_bib):
        assert self._eval(small_bib, "string(//price)") == "65.95"
        assert self._eval(small_bib, "number(//price)") == 65.95
        assert math.isnan(self._eval(small_bib, "number(//title)"))

    def test_concat_and_normalize(self, small_bib):
        assert self._eval(small_bib, 'concat("a", "b", "c")') == "abc"
        assert self._eval(small_bib, "normalize-space(//author)") == "StevensW."

    def test_name(self, small_bib):
        assert self._eval(small_bib, "name(//book)") == "book"

    def test_unbound_variable(self, small_bib):
        with pytest.raises(ExecutionError):
            self._eval(small_bib, "$nothing/title")

    def test_unknown_function(self, small_bib):
        from repro.xpath.ast import FunctionCall
        evaluator = XPathEvaluator()
        context = EvalContext(small_bib.document_node)
        with pytest.raises(ExecutionError):
            evaluator.evaluate(FunctionCall("frobnicate", ()), context)


class TestBooleanValue:
    def test_rules(self):
        assert boolean_value(True) is True
        assert boolean_value(0.0) is False
        assert boolean_value(float("nan")) is False
        assert boolean_value(1.5) is True
        assert boolean_value("") is False
        assert boolean_value("x") is True
        assert boolean_value([]) is False
        assert boolean_value([object()]) is True


class TestValueCoercion:
    def test_numeric_string_comparison(self, small_bib):
        # price (numeric string) compared against a number.
        assert values(small_bib, "//book[price = 29.99]/title") == ["Economics"]

    def test_string_order_falls_back_to_lexicographic(self):
        doc = parse("<r><x>abc</x><x>abd</x></r>")
        assert values(doc, '//x[. > "abc"]') == ["abd"]

    def test_count_work_counts_examined_nodes(self, small_bib):
        charged = []
        evaluator = XPathEvaluator(count_work=charged.append)
        context = EvalContext(small_bib.document_node)
        from repro.xpath.parser import parse_xpath
        evaluator.evaluate_path(parse_xpath("//book"), context)
        # One descendant step from the document node examines every node.
        assert sum(charged) == len(small_bib.nodes) - 1
