"""Unit tests for the hand-written XML tokenizer."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlkit.tokenizer import CHARS, COMMENT, END, PI, START, tokenize


def events(text):
    return [(e.kind, e.value) for e in tokenize(text)]


class TestBasicTokens:
    def test_single_element(self):
        assert events("<a></a>") == [(START, ("a", {})), (END, "a")]

    def test_self_closing(self):
        assert events("<a/>") == [(START, ("a", {})), (END, "a")]

    def test_text_content(self):
        assert events("<a>hi</a>") == [
            (START, ("a", {})), (CHARS, "hi"), (END, "a")]

    def test_nested_elements(self):
        kinds = [k for k, _ in events("<a><b/><c>x</c></a>")]
        assert kinds == [START, START, END, START, CHARS, END, END]

    def test_attributes_double_and_single_quotes(self):
        [(_, (tag, attrs)), _] = events("<a x=\"1\" y='two'/>")
        assert tag == "a"
        assert attrs == {"x": "1", "y": "two"}

    def test_attribute_whitespace_tolerance(self):
        [(_, (_, attrs)), _] = events('<a  x = "1" />')
        assert attrs == {"x": "1"}

    def test_names_with_punctuation(self):
        assert events("<street_address/>")[0][1][0] == "street_address"
        assert events("<book-pair/>")[0][1][0] == "book-pair"
        assert events("<ns:tag/>")[0][1][0] == "ns:tag"


class TestEntitiesAndSpecials:
    def test_predefined_entities(self):
        assert events("<a>&lt;&gt;&amp;&quot;&apos;</a>")[1] == (CHARS, "<>&\"'")

    def test_numeric_entities(self):
        assert events("<a>&#65;&#x42;</a>")[1] == (CHARS, "AB")

    def test_entities_in_attributes(self):
        [(_, (_, attrs)), _] = events('<a x="&lt;5&gt;"/>')
        assert attrs == {"x": "<5>"}

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            events("<a>&nope;</a>")

    def test_cdata_section(self):
        assert events("<a><![CDATA[<raw> & stuff]]></a>")[1] == \
            (CHARS, "<raw> & stuff")

    def test_comment(self):
        out = events("<a><!-- note --></a>")
        assert out[1] == (COMMENT, " note ")

    def test_double_dash_in_comment_rejected(self):
        with pytest.raises(XMLSyntaxError):
            events("<a><!-- a -- b --></a>")

    def test_processing_instruction(self):
        out = events("<a><?target some data?></a>")
        assert out[1] == (PI, ("target", "some data"))

    def test_xml_declaration_skipped(self):
        assert events('<?xml version="1.0"?><a/>')[0][0] == START

    def test_doctype_skipped(self):
        text = '<!DOCTYPE bib [<!ELEMENT bib (book*)>]><bib/>'
        assert [k for k, _ in events(text)] == [START, END]


class TestErrors:
    def test_unterminated_comment(self):
        with pytest.raises(XMLSyntaxError):
            events("<a><!-- oops</a>")

    def test_unterminated_cdata(self):
        with pytest.raises(XMLSyntaxError):
            events("<a><![CDATA[x</a>")

    def test_unterminated_attribute(self):
        with pytest.raises(XMLSyntaxError):
            events('<a x="1/>')

    def test_missing_equals(self):
        with pytest.raises(XMLSyntaxError):
            events('<a x "1"/>')

    def test_unquoted_attribute(self):
        with pytest.raises(XMLSyntaxError):
            events("<a x=1/>")

    def test_duplicate_attribute(self):
        with pytest.raises(XMLSyntaxError):
            events('<a x="1" x="2"/>')

    def test_bad_name_start(self):
        with pytest.raises(XMLSyntaxError):
            events("<1a/>")

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as info:
            events("<a>\n  <2/></a>")
        assert info.value.line == 2

    def test_unterminated_entity(self):
        with pytest.raises(XMLSyntaxError):
            events("<a>&amp</a>")
