"""Query-vs-data lint (QL rules), pruning rewrites and the serve fast path."""

import json

import pytest

from repro.analysis.query import analyze_query
from repro.engine import Engine, compile_query
from repro.engine.database import Database
from repro.obs.metrics import REGISTRY
from repro.serve import QueryService
from repro.xmlkit.parser import parse
from repro.xmlkit.summary import build_summary
from tests.conftest import SMALL_BIB

_FINDINGS = REGISTRY.counter("repro_querylint_findings_total", "")
_REWRITES = REGISTRY.counter("repro_querylint_rewrites_total", "")
_STATIC_EMPTY = REGISTRY.counter("repro_querylint_static_empty_total", "")
_FASTPATH = REGISTRY.counter("repro_querylint_fastpath_total", "")


def lint(text, doc_text=SMALL_BIB):
    """Compile + lint one query against a document's summary."""
    compiled = compile_query(text)
    assert compiled.tree is not None, "query left the pattern subset"
    return analyze_query(
        compiled.tree, build_summary(parse(doc_text)),
        flwor=None if compiled.is_bare_path else compiled.flwor,
        source="<test>")


class TestRuleMatrix:
    """Which QL rule fires, and which rewrite it licenses."""

    def test_ql001_absent_label_is_static_empty(self):
        result = lint("//zzz/title")
        assert "QL001" in result.report.rule_ids()
        assert result.static_empty
        assert "zzz" in result.static_empty_reason()

    def test_ql002_wrong_child_relationship(self):
        result = lint("//title/book")
        assert "QL002" in result.report.rule_ids()
        assert result.static_empty

    def test_ql002_wrong_descendant_relationship(self):
        result = lint("//author//price")
        assert "QL002" in result.report.rule_ids()
        assert result.static_empty

    def test_ql003_contradictory_equalities(self):
        result = lint('//book[@year = "1994" and @year = "2000"]/title')
        assert "QL003" in result.report.rule_ids()
        assert result.static_empty

    def test_ql003_empty_numeric_range(self):
        result = lint("//book[@year > 2005 and @year < 2000]/title")
        assert "QL003" in result.report.rule_ids()
        assert result.static_empty

    def test_ql004_constant_false_where(self):
        result = lint("for $b in //book where 1 = 2 return $b/title")
        assert "QL004" in result.report.rule_ids()
        assert result.static_empty

    def test_ql004_where_over_provably_empty_path(self):
        result = lint("for $b in //book where $b/zzz return $b/title")
        assert "QL004" in result.report.rule_ids()
        assert result.static_empty

    def test_ql005_constant_true_where_is_warning_only(self):
        result = lint("for $b in //book where 1 = 1 return $b/title")
        assert result.report.rule_ids() == ["QL005"]
        assert not result.static_empty
        assert not result.report.errors and result.report.warnings

    def test_ql005_negated_empty_path_is_not_empty(self):
        # not(empty) is constant TRUE: filters nothing, prunes nothing.
        result = lint("for $b in //book where not($b/zzz) return $b/title")
        assert "QL005" in result.report.rule_ids()
        assert not result.static_empty

    def test_ql006_attribute_never_present(self):
        result = lint('//book[@isbn = "1"]/title')
        assert "QL006" in result.report.rule_ids()
        assert result.static_empty

    def test_return_path_provably_empty(self):
        result = lint("for $b in //book return $b/zzz")
        assert "QL001" in result.report.rule_ids()
        assert result.static_empty

    def test_clean_query_has_no_findings(self):
        result = lint('//book[@year = "1994"]/title')
        assert result.report.clean
        assert not result.decisions

    def test_findings_carry_summary_fingerprint(self):
        result = lint("//zzz")
        assert result.summary_fingerprint \
            == build_summary(parse(SMALL_BIB)).fingerprint()

    def test_counters_move(self):
        before = (_FINDINGS.value(rule="QL001"),
                  _REWRITES.value(kind="static-empty"))
        lint("//zzz/title")
        assert _FINDINGS.value(rule="QL001") > before[0]
        assert _REWRITES.value(kind="static-empty") > before[1]


class TestEngineIntegration:
    def test_static_empty_plan_short_circuits(self, small_bib):
        engine = Engine(small_bib)
        result = engine.query("//zzz/title")
        assert len(result) == 0
        assert "static-empty" in engine.last_plan
        assert "QL001" in engine.last_plan

    def test_static_empty_counter_moves(self, small_bib):
        engine = Engine(small_bib)
        before = _STATIC_EMPTY.value()
        engine.query("//zzz")
        assert _STATIC_EMPTY.value() == before + 1

    def test_static_empty_flwor_with_constructor(self, small_bib):
        engine = Engine(small_bib)
        result = engine.query(
            "<out>{ for $b in //book where 1 = 2 return $b/title }</out>")
        assert result.serialize() == "<out/>"
        assert "static-empty" in engine.last_plan

    def test_cached_static_empty(self, small_bib):
        engine = Engine(small_bib)
        assert not engine.cached_static_empty("//zzz")     # not compiled yet
        engine.query("//zzz")
        assert engine.cached_static_empty("//zzz")
        engine.query("//book/title")
        assert not engine.cached_static_empty("//book/title")

    def test_escape_hatch_disables_lint(self, small_bib):
        engine = Engine(small_bib, analyze_queries=False)
        result = engine.query("//zzz/title")
        assert len(result) == 0
        assert "static-empty" not in engine.last_plan
        assert not engine.cached_static_empty("//zzz/title")

    def test_fingerprint_includes_summary_only_when_enabled(self, small_bib):
        on = Engine(small_bib).stats_fingerprint()
        off = Engine(small_bib, analyze_queries=False).stats_fingerprint()
        assert on[:-1] == off
        assert isinstance(on[-1], str)

    def test_baseline_strategies_bypass_lint(self, small_bib):
        engine = Engine(small_bib)
        assert engine.query("//zzz", strategy="naive").serialize() == ""
        assert "static-empty" not in engine.last_plan

    def test_foreign_documents_are_exempt(self, small_bib, recursive_doc):
        # `section` exists only in sections.xml: the primary document's
        # summary has no authority over it, so nothing may be pruned.
        engine = Engine(small_bib,
                        documents={"sections.xml": recursive_doc})
        result = engine.query(
            'for $s in doc("sections.xml")//section return $s/title')
        assert len(result) == 4
        assert "static-empty" not in engine.last_plan

    def test_explain_reports_lint_and_rewrite(self, small_bib):
        engine = Engine(small_bib)
        text = engine.explain("//zzz/title")
        assert "query lint:" in text
        assert "QL001" in text
        assert "rewrite:" in text
        assert "static-empty" in text

    def test_explain_clean_query_has_no_lint_section(self, small_bib):
        engine = Engine(small_bib)
        assert "query lint:" not in engine.explain("//book/title")

    def test_db_stats_subsection(self):
        db = Database.from_xml(SMALL_BIB)
        section = db.stats()["querylint"]
        assert section["enabled"] is True
        assert section["summary_paths"] > 0
        assert isinstance(section["summary_fingerprint"], str)
        off = Database.from_xml(SMALL_BIB).__class__(
            parse(SMALL_BIB), analyze_queries=False)
        assert off.stats()["querylint"]["enabled"] is False


class TestServeFastPath:
    def test_second_submission_skips_the_queue(self):
        service = QueryService(SMALL_BIB, workers=1)
        try:
            before = _FASTPATH.value()
            first = service.query("//zzz/title")        # compiles + caches
            assert len(first) == 0
            second = service.query("//zzz/title")
            assert len(second) == 0
            assert _FASTPATH.value() == before + 1
            stats = service.stats()
            assert stats["querylint"]["enabled"] is True
            assert stats["querylint"]["static_empty_fastpath"] == 1
            assert stats["counters"]["static_empty_fastpath"] == 1
        finally:
            service.close()

    def test_fast_path_result_is_well_formed(self):
        service = QueryService(SMALL_BIB, workers=1)
        try:
            service.query("//zzz")
            result = service.query("//zzz")
            assert result.serialize() == ""
            assert result.attempts == 1
            assert result.wait_ms == 0.0
        finally:
            service.close()

    def test_fast_path_disabled_with_lint_off(self):
        service = QueryService(SMALL_BIB, workers=1, analyze_queries=False)
        try:
            before = _FASTPATH.value()
            service.query("//zzz")
            service.query("//zzz")
            assert _FASTPATH.value() == before
            assert service.stats()["querylint"]["enabled"] is False
        finally:
            service.close()


class TestCli:
    def test_lint_examples_and_workloads_clean(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--lint", "--examples", "--workloads", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_flags_unsatisfiable_file(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        query = tmp_path / "dead.xq"
        query.write_text("//zzz/title")
        assert main(["--lint", str(query), "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "QL001" in out
        assert "statically empty" in out

    def test_lint_json_report_round_trip(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        report = tmp_path / "report.json"
        assert main(["--lint", "--examples", "--quiet",
                     "--json", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["schema"] == 1
        assert payload["mode"] == "lint"
        assert main(["--check-report", str(report)]) == 0
        capsys.readouterr()

    def test_check_report_rejects_unknown_schema(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"tool": "repro.analysis", "schema": 99, "errors": 0}))
        assert main(["--check-report", str(bad)]) == 2
        assert "schema 99" in capsys.readouterr().err

    def test_check_report_rejects_non_analysis_payload(self, tmp_path,
                                                       capsys):
        from repro.analysis.__main__ import main

        alien = tmp_path / "stats.json"
        alien.write_text(json.dumps({"schema": 1, "counters": {}}))
        assert main(["--check-report", str(alien)]) == 2
        assert "not a repro.analysis report" in capsys.readouterr().err

    def test_check_report_propagates_recorded_errors(self, tmp_path):
        from repro.analysis.__main__ import main

        report = tmp_path / "errors.json"
        report.write_text(json.dumps(
            {"tool": "repro.analysis", "schema": 1, "errors": 3}))
        assert main(["--check-report", str(report)]) == 1

    def test_obs_report_redirects_analysis_payloads(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        report = tmp_path / "lint.json"
        report.write_text(json.dumps(
            {"tool": "repro.analysis", "schema": 1, "errors": 0}))
        assert obs_main(["report", "--stats", str(report)]) == 2
        assert "repro.analysis --check-report" in capsys.readouterr().err
