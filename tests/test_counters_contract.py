"""The ScanCounters field contract.

``reset``/``snapshot``/``merge`` are driven by the dataclass field set
(:func:`repro.xmlkit.storage.counter_fields`), so they cannot drift
when a counter is added — this suite pins that contract down.
"""

from __future__ import annotations

import dataclasses

from repro.xmlkit.storage import CONFIG_FIELDS, ScanCounters, counter_fields


def test_counter_fields_is_every_field_except_config():
    names = {f.name for f in dataclasses.fields(ScanCounters)}
    assert set(counter_fields()) == names - set(CONFIG_FIELDS)
    assert set(CONFIG_FIELDS) == {"budget", "cancellation"}
    assert set(CONFIG_FIELDS) <= names


def test_snapshot_covers_exactly_the_counter_fields():
    counters = ScanCounters()
    assert set(counters.snapshot()) == set(counter_fields())
    # A fresh instance snapshots to all-zero.
    assert all(v == 0 for v in counters.snapshot().values())


def test_reset_zeroes_every_counter_but_keeps_the_budget():
    counters = ScanCounters(budget=7)
    for name in counter_fields():
        setattr(counters, name, 5)
    counters.reset()
    assert all(v == 0 for v in counters.snapshot().values())
    assert counters.budget == 7


def test_snapshot_is_a_copy_not_a_view():
    counters = ScanCounters()
    snap = counters.snapshot()
    counters.nodes_scanned = 99
    assert snap["nodes_scanned"] == 0


def test_merge_sums_counters_and_maxes_the_peak():
    a = ScanCounters()
    b = ScanCounters()
    for name in counter_fields():
        setattr(a, name, 2)
        setattr(b, name, 3)
    a.peak_buffered, b.peak_buffered = 10, 4
    a.merge(b)
    for name in counter_fields():
        if name == "peak_buffered":
            assert a.peak_buffered == 10    # max, not sum
        else:
            assert getattr(a, name) == 5, name


def test_trip_budget_increments_field_and_metric():
    from repro.obs.metrics import REGISTRY

    trips = REGISTRY.get("repro_budget_trips_total")
    before = trips.value()
    counters = ScanCounters()
    counters.trip_budget()
    assert counters.budget_trips == 1
    assert counters.snapshot()["budget_trips"] == 1
    assert trips.value() == before + 1


# ----------------------------------------------------------------------
# The registry-metric contract of the statistics/feedback family: the
# names are API (scrape configs and dashboards bind to them), so they
# are pinned here next to the counter-field contract.
# ----------------------------------------------------------------------

def test_stats_family_registered_with_stable_names():
    import repro.obs.statstore  # noqa: F401  (registers the family)
    import repro.serve.service  # noqa: F401  (registers the gauges)
    from repro.obs.metrics import REGISTRY

    expected = {
        "repro_stats_records_total": "counter",
        "repro_stats_recost_total": "counter",
        "repro_strategy_demotions_total": "counter",
        "repro_service_worker_utilization": "gauge",
        "repro_service_timeouts_total": "counter",
    }
    for name, kind in expected.items():
        metric = REGISTRY.get(name)
        assert metric is not None, name
        assert metric.kind == kind, name


def test_recording_feeds_the_records_counter():
    from repro.obs.metrics import REGISTRY
    from repro.obs.statstore import StatsStore

    records = REGISTRY.get("repro_stats_records_total")
    before = records.value()
    StatsStore().record("q", "pipelined", ("fp",), 1, elapsed_ms=1.0)
    assert records.value() == before + 1


def test_demotion_counter_carries_strategy_labels():
    from repro.obs.metrics import REGISTRY
    from repro.obs.statstore import DemotionRecord, StatsStore

    demotions = REGISTRY.get("repro_strategy_demotions_total")
    before = demotions.value(from_strategy="twigstack", to_strategy="stack")
    StatsStore().settle("q", ("fp",), "serial", "stack", DemotionRecord(
        query="q", fingerprint="fp", executor="serial",
        from_strategy="twigstack", to_strategy="stack",
        from_mean_ms=2.0, to_mean_ms=1.0, executions=4, reason="r"))
    after = demotions.value(from_strategy="twigstack", to_strategy="stack")
    assert after == before + 1
