"""The ScanCounters field contract.

``reset``/``snapshot``/``merge`` are driven by the dataclass field set
(:func:`repro.xmlkit.storage.counter_fields`), so they cannot drift
when a counter is added — this suite pins that contract down.
"""

from __future__ import annotations

import dataclasses

from repro.xmlkit.storage import CONFIG_FIELDS, ScanCounters, counter_fields


def test_counter_fields_is_every_field_except_config():
    names = {f.name for f in dataclasses.fields(ScanCounters)}
    assert set(counter_fields()) == names - set(CONFIG_FIELDS)
    assert set(CONFIG_FIELDS) == {"budget", "cancellation"}
    assert set(CONFIG_FIELDS) <= names


def test_snapshot_covers_exactly_the_counter_fields():
    counters = ScanCounters()
    assert set(counters.snapshot()) == set(counter_fields())
    # A fresh instance snapshots to all-zero.
    assert all(v == 0 for v in counters.snapshot().values())


def test_reset_zeroes_every_counter_but_keeps_the_budget():
    counters = ScanCounters(budget=7)
    for name in counter_fields():
        setattr(counters, name, 5)
    counters.reset()
    assert all(v == 0 for v in counters.snapshot().values())
    assert counters.budget == 7


def test_snapshot_is_a_copy_not_a_view():
    counters = ScanCounters()
    snap = counters.snapshot()
    counters.nodes_scanned = 99
    assert snap["nodes_scanned"] == 0


def test_merge_sums_counters_and_maxes_the_peak():
    a = ScanCounters()
    b = ScanCounters()
    for name in counter_fields():
        setattr(a, name, 2)
        setattr(b, name, 3)
    a.peak_buffered, b.peak_buffered = 10, 4
    a.merge(b)
    for name in counter_fields():
        if name == "peak_buffered":
            assert a.peak_buffered == 10    # max, not sum
        else:
            assert getattr(a, name) == 5, name


def test_trip_budget_increments_field_and_metric():
    from repro.obs.metrics import REGISTRY

    trips = REGISTRY.get("repro_budget_trips_total")
    before = trips.value()
    counters = ScanCounters()
    counters.trip_budget()
    assert counters.budget_trips == 1
    assert counters.snapshot()["budget_trips"] == 1
    assert trips.value() == before + 1
