"""Tests for the benchmark harness and the Table-3 shape claims.

These run at a tiny scale so the *shape* assertions (who wins, where
the DNFs fall) stay fast; the full regeneration lives under
``benchmarks/``.
"""

import pytest

from repro.bench import (
    format_dict_table,
    format_table3,
    prepare_dataset,
    run_cell,
    systems_for,
    table1_rows,
    table2_rows,
    table3_rows,
)

SCALE = 0.1


class TestHarnessMechanics:
    def test_systems_follow_paper_selection(self):
        assert systems_for("d1") == ["XH", "TS", "NL"]
        assert systems_for("d4") == ["XH", "TS", "NL"]
        for name in ("d2", "d3", "d5"):
            assert systems_for(name) == ["XH", "TS", "PL"]

    def test_prepared_dataset_memoized(self):
        first = prepare_dataset("d2", SCALE)
        second = prepare_dataset("d2", SCALE)
        assert first is second

    def test_run_cell_returns_timing_and_counters(self):
        prepared = prepare_dataset("d2", SCALE)
        cell = run_cell(prepared, "//address[//zip_code]", "PL")
        assert not cell.dnf
        assert cell.seconds >= 0
        assert cell.counters["nodes_scanned"] > 0
        assert cell.n_results > 0

    def test_run_cell_dnf(self):
        prepared = prepare_dataset("d1", SCALE)
        query = prepared.spec.query("Q5").text
        cell = run_cell(prepared, query, "NL", budget_factor=2)
        assert cell.dnf
        assert cell.display() == "DNF"

    def test_table1_rows(self):
        rows = table1_rows(SCALE)
        assert len(rows) == 5
        d1 = next(r for r in rows if r["data set"] == "d1")
        assert d1["recursive?"] == "Y"
        assert d1["#nodes"] > 0

    def test_table2_rows(self):
        rows = table2_rows(SCALE)
        assert len(rows) == 30
        assert all("selectivity" in row for row in rows)

    def test_formatting(self):
        text = format_dict_table(table1_rows(SCALE))
        assert "data set" in text and "d5" in text
        rows = table3_rows(SCALE, datasets=["d2"])
        rendered = format_table3(rows)
        assert "Q6" in rendered and "PL" in rendered


class TestTable3Shape:
    """The paper's qualitative results, asserted on work counters
    (machine-independent) rather than wall-clock."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {(r.dataset, r.system): r for r in table3_rows(SCALE)}

    def test_ts_beats_xh_in_io_everywhere(self, rows):
        for (dataset, system), row in rows.items():
            if system != "TS":
                continue
            xh = rows[(dataset, "XH")]
            for qid, cell in row.cells.items():
                assert cell.counters["nodes_scanned"] < \
                    xh.cells[qid].counters["nodes_scanned"], (dataset, qid)

    def test_pl_is_one_scan_on_non_recursive(self, rows):
        for dataset in ("d2", "d3", "d5"):
            prepared = prepare_dataset(dataset, SCALE)
            n_nodes = len(prepared.doc.nodes)
            row = rows[(dataset, "PL")]
            for qid, cell in row.cells.items():
                assert cell.counters["nodes_scanned"] == n_nodes, (dataset, qid)
                assert cell.counters["scans_started"] == 1, (dataset, qid)

    def test_pl_io_at_most_xh(self, rows):
        for dataset in ("d2", "d3", "d5"):
            pl = rows[(dataset, "PL")]
            xh = rows[(dataset, "XH")]
            for qid in pl.cells:
                assert pl.cells[qid].counters["nodes_scanned"] <= \
                    xh.cells[qid].counters["nodes_scanned"], (dataset, qid)

    def test_nl_dnfs_on_low_selectivity_recursive(self, rows):
        """The paper's DNF pattern: NL dies on the moderate/low
        selectivity recursive queries but finishes the most selective
        ones."""
        for dataset in ("d1", "d4"):
            row = rows[(dataset, "NL")]
            dnfs = {qid for qid, cell in row.cells.items() if cell.dnf}
            assert "Q1" not in dnfs, dataset       # most selective finishes
            assert {"Q5", "Q6"} <= dnfs, dataset   # low-selectivity dies

    def test_xh_and_ts_never_dnf(self, rows):
        for (dataset, system), row in rows.items():
            if system in ("XH", "TS"):
                assert not any(cell.dnf for cell in row.cells.values()), \
                    (dataset, system)

    def test_all_finishing_systems_agree_on_results(self):
        for dataset in ("d2", "d3"):
            prepared = prepare_dataset(dataset, SCALE)
            for query in prepared.spec.queries:
                counts = set()
                for system in systems_for(dataset):
                    cell = run_cell(prepared, query.text, system)
                    if not cell.dnf:
                        counts.add(cell.n_results)
                assert len(counts) == 1, (dataset, query.qid)
