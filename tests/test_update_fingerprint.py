"""Stale-fingerprint regression: updates must invalidate pruned plans.

A plan pruned against one document shape is only sound for that shape.
These tests pin the invalidation chain end to end: an update batch
recomputes `DocumentStats` *and* the structural-summary fingerprint, so
no plan-cache key built against pre-update structure can ever serve the
post-update document — the scenario where a label was absent (query
rewritten to a static-empty plan) and then inserted is the sharpest
version, because serving the stale plan would silently drop answers.
"""

from repro.engine import Engine
from repro.engine.database import Database
from repro.serve import Catalog, QueryService
from repro.xmlkit.parser import parse
from tests.conftest import SMALL_BIB


class TestEngineInvalidation:
    def test_static_empty_plan_dropped_after_insert(self):
        db = Database.from_xml(SMALL_BIB)
        assert db.query("//appendix").serialize() == ""
        assert db.engine.cached_static_empty("//appendix")

        db.updater().insert_subtree(
            db.doc.root, parse("<appendix>new</appendix>").root)

        # The update listener dropped stats + summary: the stale
        # static-empty plan must not answer the re-query.
        assert not db.engine.cached_static_empty("//appendix")
        result = db.query("//appendix")
        assert result.string_values() == ["new"]
        assert "static-empty" not in db.engine.last_plan

    def test_summary_fingerprint_recomputed_after_batch(self):
        db = Database.from_xml(SMALL_BIB)
        before_fp = db.engine.stats_fingerprint()
        before_summary = db.engine.summary.fingerprint()

        updater = db.updater()
        updater.insert_subtree(db.doc.root,
                               parse("<appendix>a</appendix>").root)
        updater.insert_subtree(db.doc.root,
                               parse("<appendix>b</appendix>").root)

        after_fp = db.engine.stats_fingerprint()
        after_summary = db.engine.summary.fingerprint()
        assert after_summary != before_summary
        assert after_fp != before_fp
        # The summary digest is the fingerprint's last component: the
        # plan-cache key changes even if coarse stats were to coincide.
        assert after_fp[-1] == after_summary

    def test_delete_also_invalidates(self, small_bib):
        engine = Engine(small_bib)
        before = engine.summary.fingerprint()
        assert len(engine.query("//price")) == 3
        from repro.xmlkit.update import DocumentUpdater

        updater = DocumentUpdater(small_bib)
        updater.register_listener(engine.notify_update)
        for node in list(small_bib.elements_by_tag("price")):
            updater.delete_subtree(node)
        assert engine.summary.fingerprint() != before
        assert engine.query("//price").serialize() == ""
        assert "static-empty" in engine.last_plan


class TestSnapshotInvalidation:
    def test_new_snapshot_gets_fresh_summary(self):
        catalog = Catalog()
        snap = catalog.register("lib", SMALL_BIB)
        engine = catalog.engine_for(snap)
        old_summary = engine.summary

        with catalog.updater("lib") as up:
            up.insert_subtree(up.doc.root,
                              parse("<appendix>new</appendix>").root)

        current = catalog.current("lib")
        assert current.snapshot_id != snap.snapshot_id
        fresh = catalog.engine_for(current)
        assert fresh.summary.fingerprint() != old_summary.fingerprint()

    def test_service_sees_inserted_label_after_update(self):
        service = QueryService(SMALL_BIB, workers=1,
                               default_document="lib")
        try:
            # Prime the static-empty plan (and the fast path) on the
            # pre-update snapshot.
            assert service.query("//appendix", doc="lib").serialize() == ""
            assert service.query("//appendix", doc="lib").serialize() == ""

            with service.updater("lib") as up:
                up.insert_subtree(up.doc.root,
                                  parse("<appendix>new</appendix>").root)

            result = service.query("//appendix", doc="lib")
            assert len(result) == 1
        finally:
            service.close()

    def test_retire_drops_cached_summary(self):
        catalog = Catalog()
        snap = catalog.register("lib", SMALL_BIB)
        catalog.engine_for(snap)       # populates the summary cache
        entry = catalog._entries["lib"]
        assert snap.snapshot_id in entry.summaries

        with catalog.updater("lib") as up:
            up.insert_subtree(up.doc.root, parse("<x/>").root)

        # The base snapshot is unpinned: retired on publish.
        assert snap.snapshot_id not in entry.summaries
