"""Tests for document updates and the index-invalidation contract."""

import pytest

from repro.engine import Engine
from repro.xmlkit import TagIndex, parse, serialize
from repro.xmlkit.update import DocumentUpdater, UpdateError


@pytest.fixture
def doc():
    return parse("<r><a><x>1</x></a><b/><c><y/></c></r>")


class TestInsert:
    def test_append_child(self, doc):
        updater = DocumentUpdater(doc)
        fragment = parse("<new><leaf/></new>").root
        report = updater.insert_subtree(doc.elements_by_tag("b")[0], fragment)
        assert report.nodes_added == 2
        assert serialize(doc.root) == \
            "<r><a><x>1</x></a><b><new><leaf/></new></b><c><y/></c></r>"

    def test_insert_at_position(self, doc):
        updater = DocumentUpdater(doc)
        fragment = parse("<z/>").root
        updater.insert_subtree(doc.root, fragment, position=0)
        assert [c.tag for c in doc.root.children] == ["z", "a", "b", "c"]

    def test_labels_valid_after_insert(self, doc):
        updater = DocumentUpdater(doc)
        updater.insert_subtree(doc.elements_by_tag("a")[0], parse("<k/>").root)
        nids = [n.nid for n in doc.nodes]
        assert nids == list(range(len(doc.nodes)))
        for node in doc.nodes:
            for child in node.children:
                assert node.start < child.start and child.end < node.end
                assert child.parent is node

    def test_relabel_count_is_tail_only(self, doc):
        # Inserting under the LAST child relabels almost nothing;
        # inserting under the first relabels the whole tail.
        late = DocumentUpdater(parse(serialize(doc.root)))
        late_doc = late.doc
        late_report = late.insert_subtree(late_doc.elements_by_tag("c")[0],
                                          parse("<k/>").root)
        early = DocumentUpdater(parse(serialize(doc.root)))
        early_doc = early.doc
        early_report = early.insert_subtree(early_doc.elements_by_tag("a")[0],
                                            parse("<k/>").root)
        assert early_report.nodes_relabeled > late_report.nodes_relabeled

    def test_source_not_modified(self, doc):
        fragment_doc = parse("<new/>")
        updater = DocumentUpdater(doc)
        updater.insert_subtree(doc.root, fragment_doc.root)
        assert fragment_doc.root.parent is fragment_doc.document_node

    def test_reject_foreign_parent(self, doc):
        other = parse("<o/>")
        updater = DocumentUpdater(doc)
        with pytest.raises(UpdateError):
            updater.insert_subtree(other.root, parse("<k/>").root)

    def test_reject_second_root(self, doc):
        updater = DocumentUpdater(doc)
        with pytest.raises(UpdateError):
            updater.insert_subtree(doc.document_node, parse("<k/>").root)

    def test_reject_bad_position(self, doc):
        updater = DocumentUpdater(doc)
        with pytest.raises(UpdateError):
            updater.insert_subtree(doc.root, parse("<k/>").root, position=99)


class TestDelete:
    def test_delete_middle_subtree(self, doc):
        updater = DocumentUpdater(doc)
        report = updater.delete_subtree(doc.elements_by_tag("a")[0])
        assert report.nodes_removed == 3  # a, x, text
        assert serialize(doc.root) == "<r><b/><c><y/></c></r>"
        nids = [n.nid for n in doc.nodes]
        assert nids == list(range(len(doc.nodes)))

    def test_cannot_delete_root(self, doc):
        updater = DocumentUpdater(doc)
        with pytest.raises(UpdateError):
            updater.delete_subtree(doc.root)

    def test_queries_correct_after_update(self, doc):
        updater = DocumentUpdater(doc)
        updater.delete_subtree(doc.elements_by_tag("b")[0])
        updater.insert_subtree(doc.elements_by_tag("c")[0], parse("<y/>").root)
        engine = Engine(doc)
        for strategy in ("naive", "pipelined", "twigstack"):
            result = engine.query("//c//y", strategy=strategy)
            assert len(result) == 2, strategy


class TestIndexInvalidation:
    def test_registered_index_invalidated(self, doc):
        index = TagIndex(doc)
        assert index.cardinality("y") == 1
        updater = DocumentUpdater(doc)
        updater.register_index(index)
        report = updater.insert_subtree(doc.elements_by_tag("c")[0],
                                        parse("<y/>").root)
        assert report.indexes_invalidated == 1
        # Rebuilt on demand with fresh content.
        assert index.cardinality("y") == 2

    def test_stale_index_is_the_update_problem(self, doc):
        """The Section-2.1 argument: an unregistered (stale) index keeps
        nodes with outdated labels — exactly why join-based approaches
        must pay maintenance costs."""
        index = TagIndex(doc)
        stale_nodes = index.nodes("y")
        DocumentUpdater(doc).insert_subtree(doc.root, parse("<q/>").root,
                                            position=0)
        fresh = doc.elements_by_tag("y")
        assert stale_nodes[0] is fresh[0]
        # The node object survived but its labels moved: a join using
        # the stale list's cached order could now be wrong.
        assert index._built  # noqa: SLF001 - asserting staleness itself
