"""Query service: deadlines, admission, caching, SV001 retry."""

import threading
import time

import pytest

from repro.engine.plancache import normalize_query_text
from repro.errors import (
    PlanInvariantError,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceOverloadedError,
    UsageError,
)
from repro.obs.metrics import REGISTRY
from repro.serve import (
    CachePolicy,
    Catalog,
    QueryService,
    ResultCacheStorage,
    ServeResult,
)
from repro.xmlkit.storage import CancellationToken, ScanCounters
from repro.xmlkit.parser import parse

LIBRARY = """
<library>
  <shelf><book><author>Stevens</author><title>TCP/IP</title></book>
  <book><author>Tanenbaum</author><title>Networks</title></book></shelf>
  <shelf><book><author>Cormen</author><title>CLRS</title></book></shelf>
</library>
"""

_TIMEOUTS = REGISTRY.counter("repro_query_timeout_total", "")
_RETRIES = REGISTRY.counter("repro_plan_retries_total", "")
_REJECTIONS = REGISTRY.counter("repro_service_rejections_total", "")
_COALESCED = REGISTRY.counter("repro_service_coalesced_total", "")
_RESULT_HITS = REGISTRY.counter("repro_result_cache_hits_total", "")


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    return QueryService(LIBRARY, **kwargs)


class TestCancellationToken:
    def test_expired_deadline_raises_timeout(self):
        token = CancellationToken(timeout_ms=0, stride=1)
        with pytest.raises(QueryTimeoutError, match="deadline"):
            token.checkpoint()

    def test_cancel_raises_cancelled(self):
        token = CancellationToken(stride=1)
        token.cancel()
        with pytest.raises(QueryCancelledError):
            token.checkpoint()

    def test_stride_batches_clock_reads(self):
        token = CancellationToken(timeout_ms=0, stride=1000)
        for _ in range(999):
            token.checkpoint()      # under the stride: no check yet
        with pytest.raises(QueryTimeoutError):
            token.checkpoint()      # the 1000th tick reads the clock

    def test_no_deadline_never_times_out(self):
        token = CancellationToken(stride=1)
        for _ in range(10):
            token.checkpoint()


class TestEngineDeadline:
    def test_timeout_zero_raises_and_counts(self):
        from repro.engine.session import Engine

        engine = Engine(parse(LIBRARY))
        before = _TIMEOUTS.value()
        with pytest.raises(QueryTimeoutError):
            engine.query("//book/title", timeout_ms=0)
        assert _TIMEOUTS.value() == before + 1

    def test_scan_loop_checkpoints_cooperatively(self):
        # A token that expires mid-scan (not at the pre-check) proves
        # the operators' scan loops really consult it.
        from repro.engine.session import Engine

        engine = Engine(parse(LIBRARY))
        counters = ScanCounters()
        token = CancellationToken(timeout_ms=10_000, stride=1)
        token.deadline = time.monotonic() - 1.0   # expire between checkpoints
        counters.cancellation = token
        with pytest.raises(QueryTimeoutError):
            engine.query("//book[author]/title", strategy="pipelined",
                         counters=counters)

    def test_generous_deadline_succeeds(self):
        from repro.engine.session import Engine

        engine = Engine(parse(LIBRARY))
        assert len(engine.query("//book/title", timeout_ms=60_000)) == 3


class TestServiceBasics:
    def test_submit_returns_serve_result(self):
        with make_service() as service:
            served = service.submit("//book[author]/title").result()
        assert isinstance(served, ServeResult)
        assert len(served) == 3
        assert served.snapshot_id == 1
        assert served.wait_ms >= 0 and served.run_ms >= 0
        assert served.attempts == 1

    def test_query_batch_in_order(self):
        with make_service() as service:
            results = service.query_batch(
                ["//book/title", "//book/author", "//shelf"])
        assert [len(r) for r in results] == [3, 3, 2]

    def test_batch_per_item_overrides(self):
        with make_service() as service:
            results = service.query_batch([
                {"text": "//book/title"},
                {"text": "//book/title", "strategy": "naive"},
            ])
        assert all(len(r) == 3 for r in results)

    def test_submit_after_close_refused(self):
        service = make_service()
        service.close()
        assert service.closed
        with pytest.raises(UsageError, match="closed"):
            service.submit("//book")

    def test_close_idempotent(self):
        service = make_service()
        service.close()
        service.close()

    def test_queries_keep_pinned_snapshot_under_updates(self):
        with make_service() as service:
            first = service.query("//book/title")
            with service.updater() as up:
                shelf = [c for c in up.doc.root.children
                         if c.tag is not None][0]
                up.delete_subtree(shelf)
            second = service.query("//book/title")
        assert first.snapshot_id == 1 and len(first) == 3
        assert second.snapshot_id == 2 and len(second) == 1


class TestDeadlines:
    def test_queue_expired_request_times_out_and_counts(self):
        before = _TIMEOUTS.value()
        with make_service() as service:
            future = service.submit("//book/title", timeout_ms=0)
            with pytest.raises(QueryTimeoutError, match="queue"):
                future.result(timeout=10)
        assert _TIMEOUTS.value() > before

    def test_default_timeout_applies(self):
        before = _TIMEOUTS.value()
        with make_service(default_timeout_ms=0) as service:
            with pytest.raises(QueryTimeoutError):
                service.query("//book/title")
        assert _TIMEOUTS.value() > before

    def test_unexpired_deadline_serves_normally(self):
        with make_service() as service:
            served = service.query("//book/title", timeout_ms=60_000)
        assert len(served) == 3


class TestAdmissionControl:
    def test_overload_rejected_with_counter(self):
        gate = threading.Event()
        release = threading.Event()

        catalog = Catalog()
        catalog.register("main", LIBRARY)
        service = QueryService(catalog, workers=1, max_queue=2)
        try:
            # Occupy the single worker with a slow request.
            original = catalog.engine_for

            def slow_engine_for(snapshot):
                gate.set()
                release.wait(timeout=10)
                return original(snapshot)

            catalog.engine_for = slow_engine_for
            blocker = service.submit("//book/author")
            assert gate.wait(timeout=10)
            # Fill the queue (distinct texts: coalescing must not merge).
            service.submit("//book/title")
            service.submit("//shelf")
            before = _REJECTIONS.value()
            with pytest.raises(ServiceOverloadedError) as exc_info:
                service.submit("//book")
            assert exc_info.value.queue_depth == 2
            assert _REJECTIONS.value() == before + 1
        finally:
            release.set()
            blocker.result(timeout=10)
            catalog.engine_for = original
            service.close()

    def test_batch_admission_is_all_or_nothing(self):
        gate = threading.Event()
        release = threading.Event()
        catalog = Catalog()
        catalog.register("main", LIBRARY)
        service = QueryService(catalog, workers=1, max_queue=2)
        try:
            original = catalog.engine_for

            def slow_engine_for(snapshot):
                gate.set()
                release.wait(timeout=10)
                return original(snapshot)

            catalog.engine_for = slow_engine_for
            blocker = service.submit("//book/author")
            assert gate.wait(timeout=10)
            with pytest.raises(ServiceOverloadedError):
                service.query_batch(["//a", "//b", "//c"])
            assert service.stats()["queue_depth"] == 0
        finally:
            release.set()
            blocker.result(timeout=10)
            catalog.engine_for = original
            service.close()


class TestCoalescingAndResultCache:
    def test_identical_requests_coalesce(self):
        gate = threading.Event()
        release = threading.Event()
        catalog = Catalog()
        catalog.register("main", LIBRARY)
        service = QueryService(catalog, workers=1)
        try:
            original = catalog.engine_for

            def slow_engine_for(snapshot):
                gate.set()
                release.wait(timeout=10)
                return original(snapshot)

            catalog.engine_for = slow_engine_for
            first = service.submit("//book/title")
            assert gate.wait(timeout=10)
            catalog.engine_for = original
            before = _COALESCED.value()
            # Queue an identical and a whitespace-variant request.
            second = service.submit("//book/title")
            third = service.submit("  //book/title  ")
            assert _COALESCED.value() == before + 2
            assert second is first and third is first
        finally:
            release.set()
            service.close()

    def test_result_cache_replays_on_same_snapshot(self):
        before = _RESULT_HITS.value()
        with make_service(workers=1) as service:
            first = service.query("//book/title")
            second = service.query("//book/title")
        assert not first.cached and second.cached
        assert second.result is first.result
        assert _RESULT_HITS.value() == before + 1

    def test_publish_invalidates_results_via_retire(self):
        with make_service(workers=1) as service:
            first = service.query("//book/title")
            with service.updater() as up:
                shelf = [c for c in up.doc.root.children
                         if c.tag is not None][0]
                up.delete_subtree(shelf)
            second = service.query("//book/title")
        assert len(first) == 3
        assert not second.cached and len(second) == 1

    def test_parameterized_requests_never_cached(self):
        with make_service(workers=1) as service:
            q = ("for $b in //book where $b/author = $who "
                 "return $b/title")
            first = service.query(q, params={"who": "Stevens"})
            second = service.query(q, params={"who": "Stevens"})
        assert not first.cached and not second.cached
        assert len(first) == len(second) == 1


class TestCacheLifecycle:
    """Storage-backed cache semantics: the retire audit, TTL expiry with
    an injected clock, and the windowed-vs-lifetime hit ratio."""

    def test_retire_drops_entries_eagerly_with_audit(self):
        """The lifecycle bugfix regression: a publish retires the old
        snapshot and its cached results must be *gone* — counter-backed
        (audit survivors == 0), not merely unreachable — before the
        retiring call returns, and a probe on the retired snapshot's key
        must miss."""
        with make_service(workers=2) as service:
            storage = service.result_cache
            queries = ("//book/title", "//book/author", "//shelf[book]")
            for text in queries:
                service.query(text)
            retired_id = service.catalog.current("main").snapshot_id
            assert len(storage) == len(queries)
            stale_key = ("main", retired_id,
                         normalize_query_text("//book/title"),
                         "auto", "serial")
            assert storage.get(stale_key) is not None

            with service.updater() as up:
                shelf = [c for c in up.doc.root.children
                         if c.tag is not None][0]
                up.delete_subtree(shelf)

            # Eager, synchronous: zero entries the moment commit returns,
            # with the audit proving the snapshot index covered them all.
            assert len(storage) == 0
            stats = storage.stats()
            assert stats["invalidated"] == len(queries)
            assert stats["audit"]["snapshots_invalidated"] >= 1
            assert stats["audit"]["survivors"] == 0
            assert stats["bytes"] == 0
            assert storage.get(stale_key) is None
            fresh = service.query("//book/title")
            assert not fresh.cached and len(fresh) == 1

    def test_ttl_expiry_with_injected_clock(self):
        clock = {"now": 0.0}
        storage = ResultCacheStorage(policy=CachePolicy(ttl_s=5.0),
                                     clock=lambda: clock["now"])
        with make_service(workers=1, result_cache=storage) as service:
            first = service.query("//book/title")
            clock["now"] = 4.0
            warm = service.query("//book/title")      # inside the TTL
            clock["now"] = 6.0
            cold = service.query("//book/title")      # past it: re-runs
        assert not first.cached and warm.cached and not cold.cached
        stats = storage.stats()
        assert stats["expirations"] == 1
        assert stats["size"] == 1                     # the re-admitted run

    def test_hit_ratio_window_resets_on_resize_and_clear(self):
        """The stale-ratio bugfix: after a resize the windowed ratio
        speaks only for the new configuration, while the lifetime ratio
        keeps the full history."""
        with make_service(workers=1) as service:
            storage = service.result_cache
            service.query("//book/title")             # miss
            service.query("//book/title")             # hit
            stats = storage.stats()
            assert stats["hit_ratio"] == 0.5
            assert stats["window"]["hit_ratio"] == 0.5

            storage.resize(max_bytes=storage.max_bytes)
            stats = storage.stats()
            assert stats["hit_ratio"] == 0.5          # lifetime survives
            assert stats["window"]["lookups"] == 0    # window starts over

            service.query("//book/title")             # entry survived: hit
            stats = storage.stats()
            assert stats["window"]["hit_ratio"] == 1.0
            assert stats["hit_ratio"] == pytest.approx(2 / 3, abs=1e-4)

            storage.clear()
            stats = storage.stats()
            assert stats["size"] == 0
            assert stats["window"]["lookups"] == 0
            assert stats["hits"] == 2 and stats["misses"] == 1

    def test_oversized_results_are_rejected_not_admitted(self):
        with make_service(
                workers=1,
                result_cache={"max_entry_bytes": 1}) as service:
            first = service.query("//book/title")
            second = service.query("//book/title")
            stats = service.result_cache.stats()
        assert not first.cached and not second.cached
        assert stats["size"] == 0
        assert stats["rejected"] >= 1


class TestPlanInvalidationRace:
    def test_sv001_poisoned_cache_retries_once(self):
        """A cached plan stamped with a dropped snapshot id must trip
        the SV001 gate and be retried transparently, exactly once."""
        catalog = Catalog()
        catalog.register("main", LIBRARY)
        with catalog.updater("main"):
            pass                    # snapshot 1 is now dropped
        snapshot = catalog.current("main")
        engine = catalog.engine_for(snapshot)
        text = "//book[author]/title"
        # Compile a good plan, then poison the shared cache: restamp the
        # entry as if it had been compiled against dropped snapshot 1 —
        # exactly what an entry that raced a publish looks like.
        engine.query(text)
        cache = catalog.plan_cache("main")
        key = (normalize_query_text(text), "auto", "serial",
               engine.stats_fingerprint())
        cache.get(key).snapshot_id = 1

        before = _RETRIES.value()
        service = QueryService(catalog, workers=1)
        try:
            served = service.query(text)
        finally:
            service.close()
        assert len(served) == 3
        assert served.attempts == 2
        assert _RETRIES.value() == before + 1
        # The retry purged the poisoned entry and cached a fresh plan.
        assert cache.get(key).snapshot_id == snapshot.snapshot_id

    def test_sv001_direct_engine_hit_raises(self):
        catalog = Catalog()
        catalog.register("main", LIBRARY)
        with catalog.updater("main"):
            pass
        snapshot = catalog.current("main")
        engine = catalog.engine_for(snapshot)
        text = "//book/author"
        engine.query(text)
        key = (normalize_query_text(text), "auto", "serial",
               engine.stats_fingerprint())
        catalog.plan_cache("main").get(key).snapshot_id = 1
        with pytest.raises(PlanInvariantError) as exc_info:
            engine.query(text)
        assert exc_info.value.rule_ids == ["SV001"]

    def test_verify_snapshot_gate(self):
        from repro.analysis import analyze_snapshot, verify_snapshot
        from repro.engine.session import Engine

        engine = Engine(parse(LIBRARY), snapshot_id=7)
        engine.query("//book")
        [key] = list(engine.plan_cache._entries)
        plan = engine.plan_cache.get(key)
        assert verify_snapshot(plan, {7}).errors == []
        report = analyze_snapshot(plan, {8, 9})
        assert report.rule_ids() == ["SV001"]
        with pytest.raises(PlanInvariantError, match="SV001"):
            verify_snapshot(plan, {8, 9})


class TestCloseSemantics:
    def test_close_without_drain_cancels_queued(self):
        gate = threading.Event()
        release = threading.Event()
        catalog = Catalog()
        catalog.register("main", LIBRARY)
        service = QueryService(catalog, workers=1)
        original = catalog.engine_for

        def slow_engine_for(snapshot):
            gate.set()
            release.wait(timeout=10)
            return original(snapshot)

        catalog.engine_for = slow_engine_for
        blocker = service.submit("//book/author")
        assert gate.wait(timeout=10)
        catalog.engine_for = original
        queued = service.submit("//book/title")
        release.set()
        service.close(drain=False)
        blocker.result(timeout=10)          # in-flight request completes
        with pytest.raises(QueryCancelledError):
            queued.result(timeout=10)

    def test_close_with_drain_serves_everything(self):
        service = make_service()
        futures = [service.submit(q)
                   for q in ("//book/title", "//book/author", "//shelf")]
        service.close(drain=True)
        assert [len(f.result()) for f in futures] == [3, 3, 2]


_INDEX_BUILDS = REGISTRY.counter("repro_tag_index_builds_total", "")


def big_library(n_books: int = 800) -> str:
    """A corpus large enough to clear the parallel-scan threshold."""
    return "<library>" + "".join(
        f"<shelf><book><author>a{i % 11}</author>"
        f"<title>t{i}</title></book></shelf>"
        for i in range(n_books)) + "</library>"


class TestParallelismAndIndexLifecycle:
    def test_parallel_request_bit_identical_to_serial(self):
        with QueryService(big_library(), workers=2) as service:
            serial = service.query("//book/title")
            parallel = service.query("//book/title", executor="threads:4")
        assert serial.snapshot_id == parallel.snapshot_id
        assert [n.nid for n in serial.items] == \
            [n.nid for n in parallel.items]

    def test_result_cache_key_separates_executor(self):
        with make_service(workers=1) as service:
            serial = service.query("//book/title")
            parallel = service.query("//book/title", executor="threads:4")
            again = service.query("//book/title", executor="threads:4")
        assert not serial.cached
        # A serially-computed cached result must not answer a request
        # asking for a different execution backend: the keys differ.
        assert not parallel.cached
        assert again.cached
        assert [n.nid for n in serial.items] == \
            [n.nid for n in parallel.items]

    def test_batch_accepts_executor_overrides(self):
        with QueryService(big_library(), workers=2) as service:
            plain, parallel = service.query_batch([
                {"text": "//book/author"},
                {"text": "//book/author", "executor": "threads:4"},
            ])
        assert [n.nid for n in plain.items] == \
            [n.nid for n in parallel.items]

    def test_tag_index_built_at_most_once_per_snapshot(self):
        queries = ["//book[author]/title", "//shelf[book]//author",
                   "//book[title]/author"]
        before = _INDEX_BUILDS.value()
        with make_service(workers=1) as service:
            for q in queries:           # distinct plans, one shared index
                service.query(q, strategy="twigstack")
            assert _INDEX_BUILDS.value() <= before + 1
            with service.updater() as up:
                shelf = [c for c in up.doc.root.children
                         if c.tag is not None][0]
                up.delete_subtree(shelf)
            for q in queries:           # new snapshot: one more build
                service.query(q, strategy="twigstack")
        assert _INDEX_BUILDS.value() <= before + 2
