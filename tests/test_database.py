"""Tests for the persistent Database facade."""


from repro.engine.database import Database
from repro.xmlkit import serialize
from tests.conftest import SMALL_BIB


class TestPersistence:
    def test_save_open_round_trip(self, tmp_path):
        db = Database.from_xml(SMALL_BIB)
        written = db.save(tmp_path / "lib.btx")
        assert written > 0
        again = Database.open(tmp_path / "lib.btx")
        assert serialize(again.doc.root) == serialize(db.doc.root)

    def test_queries_identical_after_reload(self, tmp_path):
        db = Database.from_xml(SMALL_BIB)
        db.save(tmp_path / "lib.btx")
        again = Database.open(tmp_path / "lib.btx")
        for query in ("//book[author]/title", "//book[price > 30]//last"):
            assert again.query(query).serialize() == \
                db.query(query).serialize()

    def test_stats_available(self):
        db = Database.from_xml(SMALL_BIB)
        assert db.doc_stats.n_elements == 17
        assert not db.doc_stats.recursive


class TestUpdateIntegration:
    def test_update_invalidates_index_and_stats_refresh(self):
        from repro.xmlkit import parse

        db = Database.from_xml(SMALL_BIB)
        db.engine.index.build()
        before = len(db.query("//book", strategy="twigstack"))
        report = db.updater().insert_subtree(
            db.doc.root, parse("<book><title>new</title></book>").root)
        assert report.indexes_invalidated == 1
        after = len(db.query("//book", strategy="twigstack"))
        assert after == before + 1

    def test_refresh_stats_after_update(self):
        from repro.xmlkit import parse

        db = Database.from_xml("<r><a/></r>")
        assert not db.doc_stats.recursive
        db.updater().insert_subtree(db.doc.elements_by_tag("a")[0],
                                    parse("<a/>").root)
        stats = db.refresh_stats()
        assert stats.recursive  # a within a now
        # the optimizer reads the refreshed stats
        db.query("for $x in //a, $y in $x//a return $y")
        assert "stack" in db.engine.last_plan or "twigstack" in db.engine.last_plan

    def test_explain_passthrough(self):
        db = Database.from_xml(SMALL_BIB)
        assert "strategy:" in db.explain("//book//last")
