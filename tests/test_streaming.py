"""Tests for the streaming (SAX) NoK matcher."""

import pytest

from repro.errors import CompileError
from repro.pattern import build_from_path, decompose
from repro.physical import NoKMatcher
from repro.physical.streaming import StreamingNoKMatcher, stream_count
from repro.xmlkit import serialize
from repro.xmlkit.sax import parse_string
from repro.xpath import parse_xpath
from tests.conftest import RECURSIVE_DOC, SMALL_BIB


def nok_for(path_text):
    tree = build_from_path(parse_xpath(path_text))
    dec = decompose(tree)
    element_noks = [n for n in dec.noks if n.root.name != "#root"]
    assert len(element_noks) == 1, "pattern must be a single NoK for streaming"
    return element_noks[0]


def tree_count(doc, nok):
    return len(NoKMatcher(nok, doc).matches())


class TestAgainstTreeMatcher:
    PATTERNS = [
        "//book",
        "//book/author",
        "//book/author/last",
        "//book/price",
        '//book[@year = "2000"]',
        '//book[@year = "2000"]/author',
    ]

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_counts_agree_small_bib(self, small_bib, pattern):
        nok = nok_for(pattern)
        assert stream_count(SMALL_BIB, nok) == tree_count(small_bib, nok)

    RECURSIVE_PATTERNS = [
        "//section",
        "//section/title",
        "//section/section",
        "//section/section/title",
    ]

    @pytest.mark.parametrize("pattern", RECURSIVE_PATTERNS)
    def test_counts_agree_recursive(self, recursive_doc, pattern):
        nok = nok_for(pattern)
        assert stream_count(RECURSIVE_DOC, nok) == \
            tree_count(recursive_doc, nok)

    def test_counts_agree_on_generated_corpus(self):
        from repro.datagen import generate_d3
        doc = generate_d3(scale=0.05)
        text = serialize(doc.root)
        for pattern in ("//item/attributes", "//author/name/last_name",
                        "//publisher/street_information"):
            nok = nok_for(pattern)
            assert stream_count(text, nok) == tree_count(doc, nok), pattern


class TestStreamingSpecifics:
    def test_collect_leaf_values(self, small_bib):
        nok = nok_for("//last")
        handler = StreamingNoKMatcher(nok, collect_values=True)
        parse_string(SMALL_BIB, handler)
        assert handler.root_values == ["Stevens", "Abiteboul", "Buneman"]

    def test_text_predicate(self):
        nok = nok_for('//last[. = "Stevens"]')
        assert stream_count(SMALL_BIB, nok) == 1

    def test_memory_bounded_by_depth_not_size(self):
        wide = "<r>" + "<a><b/></a>" * 500 + "</r>"
        nok = nok_for("//a/b")
        handler = StreamingNoKMatcher(nok)
        parse_string(wide, handler)
        assert handler.count == 500
        assert handler.max_open < 20  # hundreds of matches, tiny state

    def test_mandatory_children_enforced(self):
        nok = nok_for("//book/author")
        count = stream_count(SMALL_BIB, nok)
        assert count == 2  # Economics has no author

    def test_root_pattern_rejected(self):
        tree = build_from_path(parse_xpath("/bib/book"))
        dec = decompose(tree)
        with pytest.raises(CompileError):
            StreamingNoKMatcher(dec.noks[0])

    def test_non_streamable_predicate_rejected(self):
        with pytest.raises(CompileError):
            StreamingNoKMatcher(nok_for("//book[price > 3]"))

    def test_single_pass_over_raw_text(self):
        # stream_count parses raw text: no Document is ever built.
        nok = nok_for("//a/b")
        assert stream_count("<r><a><b/><b/></a><a/></r>", nok) == 1


class TestNumericPredicates:
    """Numeric equality literals: stream and tree matchers must agree.

    Regression: ``NumberLiteral`` predicates used to be rejected as
    non-streamable because the literal check only accepted ``Literal``.
    """

    NUMERIC_PATTERNS = [
        "//book[@year = 2000]",
        "//book[2000 = @year]",
        "//book[@year = 1850]",
        "//book/price[. = 39.95]",
        "//book/price[39.95 = .]",
        "//book/price[. = 100]",
    ]

    @pytest.mark.parametrize("pattern", NUMERIC_PATTERNS)
    def test_counts_agree_with_tree_matcher(self, small_bib, pattern):
        nok = nok_for(pattern)
        assert stream_count(SMALL_BIB, nok) == tree_count(small_bib, nok)

    def test_attribute_number_both_operand_orders(self):
        assert stream_count(SMALL_BIB, nok_for("//book[@year = 2000]")) == 1
        assert stream_count(SMALL_BIB, nok_for("//book[2000 = @year]")) == 1

    def test_text_number_matches_despite_formatting(self):
        xml = "<r><a> 5 </a><a>5.0</a><a>4</a></r>"
        assert stream_count(xml, nok_for("//a[. = 5]")) == 2

    def test_unparsable_value_is_unequal_not_an_error(self):
        from repro.xmlkit import parse

        xml = '<r><a x="n/a">word</a><a x="5">5</a></r>'
        for pattern in ("//a[@x = 5]", "//a[. = 5]"):
            nok = nok_for(pattern)
            assert stream_count(xml, nok) == 1
            assert tree_count(parse(xml), nok_for(pattern)) == 1
