"""Tests for static FLWOR analysis (repro.xquery.semantics)."""

import pytest

from repro.errors import StaticError
from repro.xquery import parse_flwor
from repro.xquery.semantics import analyze

EXAMPLE1 = """
for $b1 in doc("x")//book, $b2 in doc("x")//book
let $a1 := $b1/author
let $a2 := $b2/author
where $b1 << $b2 and not($b1/title = $b2/title) and deep-equal($a1, $a2)
return <p>{ $b1/title }{ $b2/title }</p>
"""


class TestBinding:
    def test_clean_query(self):
        report = analyze(parse_flwor(EXAMPLE1))
        assert report.ok
        assert report.bound_variables == ["b1", "b2", "a1", "a2"]
        assert report.unused_variables == []

    def test_unbound_in_clause(self):
        report = analyze(parse_flwor("for $a in $ghost/x return $a"))
        assert not report.ok
        assert "unbound variable $ghost" in report.errors[0]

    def test_unbound_in_where(self):
        report = analyze(parse_flwor(
            "for $a in //x where $boo/y = 1 return $a"))
        assert any("$boo" in e for e in report.errors)

    def test_unbound_in_return_constructor(self):
        report = analyze(parse_flwor(
            "for $a in //x return <r>{ $missing }</r>"))
        assert any("$missing" in e for e in report.errors)

    def test_duplicate_binding(self):
        report = analyze(parse_flwor(
            "for $a in //x, $a in //y return $a"))
        assert any("bound twice" in e for e in report.errors)

    def test_binding_order_matters(self):
        # $b used before its binding clause.
        report = analyze(parse_flwor(
            "for $a in $b/x, $b in //y return $a"))
        assert any("$b" in e for e in report.errors)

    def test_unused_variable_detected(self):
        report = analyze(parse_flwor(
            "for $a in //x let $dead := $a/y return $a"))
        assert report.unused_variables == ["dead"]

    def test_quantifier_binds_its_variable(self):
        report = analyze(parse_flwor(
            "for $a in //x where some $q in $a/y satisfies $q/z return $a"))
        assert report.ok

    def test_quantifier_variable_not_visible_outside(self):
        report = analyze(parse_flwor(
            "for $a in //x where some $q in $a/y satisfies $q return $q"))
        assert any("$q" in e for e in report.errors)

    def test_nested_flwor_scoping(self):
        report = analyze(parse_flwor(
            "for $a in //x return <r>{ for $c in $a/y return $c }</r>"))
        assert report.ok

    def test_raise_errors(self):
        report = analyze(parse_flwor("for $a in $nope/x return $a"))
        with pytest.raises(StaticError):
            report.raise_errors()


class TestCorrelations:
    def test_example1_correlations(self):
        report = analyze(parse_flwor(EXAMPLE1))
        relations = [(c.relation, c.variables) for c in report.correlations]
        assert ("<<", ("b1", "b2")) in relations
        assert ("=", ("b1", "b2")) in relations
        assert ("deep-equal", ("a1", "a2")) in relations
        assert all(c.is_join for c in report.correlations)

    def test_single_variable_conjunct_is_not_join(self):
        report = analyze(parse_flwor(
            "for $a in //x where $a/p > 3 and $a/q = 1 return $a"))
        assert len(report.correlations) == 2
        assert not any(c.is_join for c in report.correlations)

    def test_other_relation(self):
        report = analyze(parse_flwor(
            "for $a in //x where exists($a/y) return $a"))
        assert report.correlations[0].relation == "other"
