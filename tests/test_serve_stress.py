"""Differential stress test: snapshot isolation under concurrent load.

The serving contract (ISSUE PR-4 acceptance): N writer threads publish
update batches while M reader threads hammer the service; every served
result must be *bit-identical* to a serial replay of the same query on
the exact snapshot the service says it used.  Any torn read, stale plan
or cache aliasing shows up as a serialization mismatch.

``REPRO_STRESS_SECONDS`` (default 5) bounds the wall time; CI runs the
same test under ``PYTHONDEVMODE=1`` in the concurrency-smoke job.
``REPRO_STRESS_PARALLELISM`` > 1 makes every read request ask for
intra-query partition-parallel scans over a larger corpus (the
parallel-smoke job runs with 4): the serial-replay comparison then
doubles as the Theorem-1 bit-identity check under concurrent publishes.
"""

import os
import random
import threading
import time

from repro.engine.session import Engine
from repro.serve import Catalog, QueryService
from repro.xmlkit.tree import DocumentBuilder

STRESS_SECONDS = float(os.environ.get("REPRO_STRESS_SECONDS", "5"))
STRESS_PARALLELISM = int(os.environ.get("REPRO_STRESS_PARALLELISM", "1"))
N_WRITERS = 4
N_READERS = 8

QUERIES = (
    "//book/title",
    "//book[author]/title",
    "//shelf/book/author",
    "for $b in //book where $b/author return $b/title",
    "//shelf[book]",
)


def build_library(shelves: int = 3, books: int = 4):
    builder = DocumentBuilder()
    builder.start_element("library")
    serial = 0
    for s in range(shelves):
        builder.start_element("shelf", {"genre": f"g{s}"})
        for _ in range(books):
            serial += 1
            builder.start_element("book", {"id": f"b{serial}"})
            builder.element("author", f"author-{serial}")
            builder.element("title", f"title-{serial}")
            builder.end_element()
        builder.end_element()
    builder.end_element()
    return builder.finish()


def make_book(serial: int):
    builder = DocumentBuilder()
    builder.start_element("book", {"id": f"w{serial}"})
    builder.element("author", f"author-w{serial}")
    builder.element("title", f"title-w{serial}")
    builder.end_element()
    return builder.finish().root


def elems(node, tag=None):
    return [c for c in node.children
            if c.tag is not None and (tag is None or c.tag == tag)]


def test_concurrent_readers_match_serial_replay_exactly():
    catalog = Catalog()
    # With intra-query parallelism requested, use a corpus big enough
    # to clear the optimizer's parallel-scan threshold.
    catalog.register("main", build_library() if STRESS_PARALLELISM <= 1
                     else build_library(shelves=40, books=30))
    service = QueryService(catalog, workers=N_READERS,
                           max_queue=256,
                           result_cache={"max_entries": 128})
    deadline = time.monotonic() + STRESS_SECONDS
    stop = threading.Event()
    violations: list[str] = []
    counts = {"reads": 0, "writes": 0}
    lock = threading.Lock()

    def writer(seed: int) -> None:
        rng = random.Random(seed)
        serial = seed * 1_000_000
        while not stop.is_set():
            serial += 1
            try:
                with catalog.updater("main") as up:
                    shelves = elems(up.doc.root, "shelf")
                    shelf = rng.choice(shelves)
                    books = elems(shelf, "book")
                    # Grow-biased so deletes never run the corpus dry.
                    if len(books) > 2 and rng.random() < 0.4:
                        up.delete_subtree(rng.choice(books))
                    else:
                        up.insert_subtree(shelf, make_book(serial))
                with lock:
                    counts["writes"] += 1
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                violations.append(f"writer: {exc!r}")
                return
            time.sleep(rng.uniform(0.0, 0.002))

    def reader(seed: int) -> None:
        rng = random.Random(10_000 + seed)
        while not stop.is_set():
            text = rng.choice(QUERIES)
            try:
                served = service.query(
                    text, timeout_ms=30_000,
                    executor=f"threads:{STRESS_PARALLELISM}"
                    if STRESS_PARALLELISM > 1 else None)
                # Differential check: replay serially on the *pinned*
                # snapshot the service claims it used.  Snapshots are
                # immutable, so the replay must be bit-identical.
                replay = Engine(served.snapshot.doc).query(text)
                if served.serialize() != replay.serialize():
                    violations.append(
                        f"isolation violation: {text!r} on snapshot "
                        f"{served.snapshot_id}: served "
                        f"{served.serialize()[:120]!r} != replay "
                        f"{replay.serialize()[:120]!r}")
                    return
                with lock:
                    counts["reads"] += 1
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                violations.append(f"reader: {exc!r}")
                return

    threads = [threading.Thread(target=writer, args=(i,), daemon=True)
               for i in range(N_WRITERS)]
    threads += [threading.Thread(target=reader, args=(i,), daemon=True)
                for i in range(N_READERS)]
    for thread in threads:
        thread.start()
    while time.monotonic() < deadline and not violations:
        time.sleep(0.05)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    service.close()

    assert not violations, violations[:5]
    assert counts["writes"] > 0, "no update batch ever committed"
    assert counts["reads"] > 0, "no query was ever served"
    # Every commit published a snapshot; liveness bookkeeping must not
    # leak: at most the current + currently pinned snapshots stay live.
    publishes = counts["writes"]
    assert catalog.current("main").snapshot_id >= publishes
    assert len(catalog.live_ids("main")) <= 1 + N_READERS


def test_plan_and_result_caches_stay_coherent_under_churn():
    """Tight loop over one query while writers churn: every answer must
    match its snapshot even when served from the result cache."""
    catalog = Catalog()
    catalog.register("main", build_library())
    service = QueryService(catalog, workers=4,
                           result_cache={"max_entries": 64})
    stop = threading.Event()
    violations: list[str] = []

    def writer() -> None:
        serial = 0
        while not stop.is_set():
            serial += 1
            with catalog.updater("main") as up:
                up.insert_subtree(elems(up.doc.root, "shelf")[0],
                                  make_book(serial))

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    deadline = time.monotonic() + min(STRESS_SECONDS, 2.0)
    while time.monotonic() < deadline:
        served = service.query("//book/title", timeout_ms=30_000)
        expected = len(Engine(served.snapshot.doc).query("//book/title"))
        if len(served) != expected:
            violations.append(
                f"snapshot {served.snapshot_id} (cached={served.cached}): "
                f"{len(served)} != {expected}")
            break
    stop.set()
    thread.join(timeout=30)
    service.close()
    assert not violations, violations


def test_cache_churn_under_byte_pressure_and_ttl():
    """Cache-churn phase: a tiny byte budget plus a short TTL force
    constant eviction/expiry while writers retire snapshots underneath.

    Every miss re-executes; the differential check asserts the fresh
    result is bit-identical to a serial replay on the served snapshot —
    so eviction, expiry and retire-invalidation can never surface a
    wrong answer, only a recomputation.  The storage's audit counters
    must show zero entries surviving any snapshot retire.
    """
    catalog = Catalog()
    catalog.register("main", build_library())
    # A budget of ~4 entries' bytes and a TTL short enough to expire
    # within the loop: both reclamation paths stay hot.
    service = QueryService(
        catalog, workers=4,
        result_cache={"max_bytes": 2048, "ttl_s": 0.05})
    storage = service.result_cache
    stop = threading.Event()
    violations: list[str] = []

    def writer() -> None:
        serial = 0
        while not stop.is_set():
            serial += 1
            with catalog.updater("main") as up:
                up.insert_subtree(elems(up.doc.root, "shelf")[0],
                                  make_book(serial))
            time.sleep(0.002)

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    deadline = time.monotonic() + min(STRESS_SECONDS, 2.0)
    served_cached = served_fresh = 0
    while time.monotonic() < deadline:
        for text in QUERIES:
            served = service.query(text, timeout_ms=30_000)
            if served.cached:
                served_cached += 1
                continue
            served_fresh += 1
            replay = Engine(served.snapshot.doc).query(text)
            if served.serialize() != replay.serialize():
                violations.append(
                    f"miss replay mismatch: {text!r} on snapshot "
                    f"{served.snapshot_id}")
                break
        if violations:
            break
    stop.set()
    thread.join(timeout=30)
    service.close()

    assert not violations, violations
    assert served_fresh > 0, "cache churn never forced a re-execution"
    stats = storage.stats()
    # Both reclamation paths plus retire-invalidation actually ran.
    assert stats["evictions"] + stats["expirations"] > 0, stats
    assert stats["audit"]["snapshots_invalidated"] > 0, stats
    # The tentpole invariant: no entry of any retired snapshot survived
    # its invalidation (the audit scans the whole cache per retire).
    assert stats["audit"]["survivors"] == 0, stats
    # Byte accounting stayed consistent under the churn.
    assert stats["bytes"] <= stats["capacity_bytes"]
