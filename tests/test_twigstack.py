"""Unit tests for the TwigStack holistic twig join."""

import pytest

from repro.errors import ExecutionError
from repro.pattern import build_from_path
from repro.physical import TwigStackOperator, twig_supported
from repro.xmlkit import parse
from repro.xmlkit.storage import ScanCounters
from repro.xpath import evaluate_xpath, parse_xpath
from repro.xquery import parse_flwor
from repro.pattern.build import build_blossom_tree


def twig_nodes(doc, path_text):
    tree = build_from_path(parse_xpath(path_text))
    operator = TwigStackOperator(tree, doc)
    return [n.nid for n in operator.matching_nodes(tree.var_vertex["#result"])]


def oracle_nodes(doc, path_text):
    return [n.nid for n in evaluate_xpath(doc, path_text)]


class TestSupport:
    def test_pure_twig_supported(self):
        assert twig_supported(build_from_path(parse_xpath("//a[//b]//c")))
        assert twig_supported(build_from_path(parse_xpath("/a/b[c]/d")))

    def test_crossing_edges_unsupported(self):
        tree = build_blossom_tree(parse_flwor(
            "for $a in //x, $b in //y where $a << $b return $a"))
        assert not twig_supported(tree)

    def test_optional_edges_unsupported(self):
        tree = build_blossom_tree(parse_flwor(
            "for $a in //x let $l := $a/y return $a"))
        assert not twig_supported(tree)

    def test_operator_rejects_unsupported(self, small_bib):
        tree = build_blossom_tree(parse_flwor(
            "for $a in //x let $l := $a/y return $a"))
        with pytest.raises(ExecutionError):
            TwigStackOperator(tree, small_bib)


class TestAgainstOracle:
    QUERIES = [
        "//book//last",
        "//book[//last]//title",
        "//book[author][price]/title",
        "//bib//book//author//last",
        "/bib/book/author/last",
        "//book[author/last]/title",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_small_bib(self, small_bib, query):
        assert twig_nodes(small_bib, query) == oracle_nodes(small_bib, query)

    RECURSIVE_QUERIES = [
        "//section//title",
        "//section//section//title",
        "//section[//para]//title",
        "//doc//section[title]//para",
        "//section[section]//title",
    ]

    @pytest.mark.parametrize("query", RECURSIVE_QUERIES)
    def test_recursive_doc(self, recursive_doc, query):
        assert twig_nodes(recursive_doc, query) == \
            oracle_nodes(recursive_doc, query)

    def test_child_edges_post_filtered(self):
        # /a/b twigs over data where b's exist at other depths: the path
        # solutions must be filtered to parent-child pairs.
        doc = parse("<a><b/><x><b/></x></a>")
        assert twig_nodes(doc, "/a/b") == oracle_nodes(doc, "/a/b")

    def test_branching_needs_both_branches(self):
        doc = parse("<r><a><b/></a><a><c/></a><a><b/><c/></a></r>")
        assert twig_nodes(doc, "//a[b][c]") == oracle_nodes(doc, "//a[b][c]")

    def test_tail_solutions_after_stream_exhaustion(self):
        # b's all precede c's; the b stream exhausts before any c is
        # seen, but (a, c) path solutions must still be produced.
        doc = parse("<r><a><b/><b/><c/><c/></a></r>")
        assert twig_nodes(doc, "//a[b]/c") == oracle_nodes(doc, "//a[b]/c")

    def test_empty_result(self, small_bib):
        assert twig_nodes(small_bib, "//book[nothing]//title") == []

    def test_value_predicates_filter_streams(self, small_bib):
        got = twig_nodes(small_bib, '//book[@year = "2000"]//last')
        assert got == oracle_nodes(small_bib, '//book[@year = "2000"]//last')


class TestCounters:
    def test_stream_io_charged(self, small_bib):
        tree = build_from_path(parse_xpath("//book//last"))
        counters = ScanCounters()
        operator = TwigStackOperator(tree, small_bib, counters=counters)
        operator.matching_nodes(tree.var_vertex["#result"])
        # Exactly the two tag streams are read: 3 books + 3 lasts.
        assert counters.nodes_scanned == 6

    def test_stack_memory_tracked(self, recursive_doc):
        tree = build_from_path(parse_xpath("//section//title"))
        counters = ScanCounters()
        operator = TwigStackOperator(tree, recursive_doc, counters=counters)
        operator.matching_nodes(tree.var_vertex["#result"])
        assert counters.peak_buffered >= 2  # nested sections stack up
