"""Differential bit-identity of QL pruning rewrites.

The soundness contract: for any query and any document, an engine with
query analysis on (pruned BlossomTrees, static-empty short circuits)
returns a result bit-identical to the same engine with analysis off
(`analyze_queries=False`, the escape hatch).  This suite pins that over
the datagen workloads — including scales where rare labels vanish and
the lint legitimately fires — plus hand-written queries targeting each
rewrite kind, across serial and parallel execution.
"""

import pytest

from repro.datagen.workload import DATASETS
from repro.engine import Engine
from tests.conftest import SMALL_BIB
from repro.xmlkit.parser import parse

#: Queries engineered so the lint *does* rewrite on SMALL_BIB
#: (bib/book@year/title/author/last/price).
REWRITTEN_QUERIES = [
    "//zzz/title",                                         # QL001 s-empty
    "//title/book",                                        # QL002 s-empty
    "//author//price",                                     # QL002 s-empty
    '//book[@year = "1994" and @year = "2000"]/title',     # QL003 s-empty
    "//book[@year > 2005 and @year < 2000]/title",         # QL003 s-empty
    '//book[@isbn = "1"]/title',                           # QL006 s-empty
    "for $b in //book where 1 = 2 return $b/title",        # QL004 s-empty
    "for $b in //book where $b/zzz return $b/title",       # QL004 s-empty
    "for $b in //book return $b/zzz",                      # return-empty
    "<out>{ for $b in //book where 1 = 2 "
    "return $b/title }</out>",                             # constructor
    # Warning-only rewrites must not change anything either.
    "for $b in //book where 1 = 1 return $b/title",        # QL005
    "for $b in //book where not($b/zzz) return $b/title",  # QL005
    # Prunable optional branch (let over a provably-empty path).
    "for $b in //book let $z := $b/zzz/qqq "
    "return $b/title",
]


def differential(doc, text, **kwargs):
    """Serialize the query with lint on and off; both must agree."""
    linted = Engine(doc).query(text, **kwargs).serialize()
    plain = Engine(doc, analyze_queries=False).query(
        text, **kwargs).serialize()
    assert linted == plain
    return linted


class TestHandWrittenRewrites:
    @pytest.mark.parametrize("text", REWRITTEN_QUERIES)
    def test_serial(self, small_bib, text):
        differential(small_bib, text)

    @pytest.mark.parametrize("text", REWRITTEN_QUERIES)
    def test_parallel(self, small_bib, text):
        differential(small_bib, text, executor="threads:2")

    def test_rewrites_actually_fired(self, small_bib):
        # The suite is vacuous if nothing was rewritten: assert the
        # static-empty queries really take the short circuit.
        engine = Engine(small_bib)
        engine.query("//zzz/title")
        assert "static-empty" in engine.last_plan


class TestWorkloadDifferential:
    """Every workload query, pruned vs unpruned, on its own dataset.

    At scale 0.1 every label occurs (the lint stays quiet); at scale
    0.02 the rare high-selectivity labels (``b4``, ``country_id``,
    ``phdthesis`` ...) vanish from the generated documents, so the lint
    legitimately rewrites real workload queries to static-empty plans —
    both regimes must be bit-identical to the unpruned run.
    """

    @pytest.mark.parametrize("scale", [0.1, 0.02])
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_serial(self, name, scale):
        dataset = DATASETS[name]
        doc = dataset.generate(scale=scale)
        for spec in dataset.queries:
            differential(doc, spec.text)

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_parallel(self, name):
        dataset = DATASETS[name]
        doc = dataset.generate(scale=0.1)
        for spec in dataset.queries:
            differential(doc, spec.text, executor="threads:2")

    def test_small_scale_rewrites_fire(self):
        # d1 Q1 targets the ~1% label b4: absent at scale 0.02.
        doc = DATASETS["d1"].generate(scale=0.02)
        engine = Engine(doc)
        engine.query(DATASETS["d1"].queries[0].text)
        assert "static-empty" in engine.last_plan


class TestExplicitStrategies:
    """Pruned plans must agree with lint-off across explicit strategies."""

    STRATEGIES = ["pipelined", "stack", "twigstack", "auto"]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_static_empty_across_strategies(self, strategy):
        doc = parse(SMALL_BIB)
        differential(doc, "//zzz/title", strategy=strategy)

    # twigstack refuses optional modes outright, lint on or off.
    @pytest.mark.parametrize("strategy", ["pipelined", "stack", "auto"])
    def test_pruned_let_across_strategies(self, strategy):
        doc = parse(SMALL_BIB)
        differential(
            doc,
            "for $b in //book let $z := $b/zzz/qqq return $b/title",
            strategy=strategy)
