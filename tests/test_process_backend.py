"""The process execution backend: differential bit-identity across all
three backends, cancellation, crash containment, resource lifecycle.

``executor="processes"`` replays the merged-scan dispatch loop in worker
processes over the mmap-shared arena (:mod:`repro.xmlkit.arena`), so
every test here is ultimately a Theorem-1 claim: partition-order
concatenation of per-process match lists must reproduce the serial
object-tree scan bit for bit — across every datagen workload, skewed
shapes included — and failure modes (deadline, budget, a dying worker)
must surface as the same clean errors the thread backend raises.
"""

import multiprocessing
import os

import pytest

from repro.datagen.workload import DATASETS
from repro.engine import Engine
from repro.errors import DNFError, ExecutionError, QueryTimeoutError
from repro.pattern import build_from_path, decompose
from repro.physical import process_scan
from repro.physical.nok_merge import merged_scan
from repro.physical.parallel_scan import parallel_merged_scan
from repro.physical.process_scan import ProcessScanBackend, ScanPools
from repro.xmlkit import parse
from repro.xmlkit.partition import partition_document
from repro.xmlkit.storage import CancellationToken, ScanCounters
from repro.xpath import parse_xpath


def wide_doc(n_books: int = 300) -> str:
    return "<bib>" + "".join(
        f"<shelf><book year='{1990 + i % 20}'><author>a{i % 7}</author>"
        f"<title>t{i}</title><price>{i % 50}</price></book></shelf>"
        for i in range(n_books)) + "</bib>"


def skewed_doc(n_items: int = 400) -> str:
    giant = "".join(f"<item><name>n{i}</name><price>{i % 9}</price></item>"
                    for i in range(n_items))
    return f"<root><tiny/><giant>{giant}</giant><tail><item/></tail></root>"


def noks_for(path_text: str):
    return decompose(build_from_path(parse_xpath(path_text))).noks


def fine_partitions(doc, k: int):
    return partition_document(doc, k, min_nodes=1)


@pytest.fixture(scope="module")
def backend():
    pool = ProcessScanBackend(max_workers=2)
    yield pool
    pool.close(wait=True)


def scan_with(doc, path_text, *, backend=None, k=4,
              counters=None, per_nok=None):
    if backend is None:
        return parallel_merged_scan(noks_for(path_text), doc,
                                    counters, per_nok,
                                    partitions=fine_partitions(doc, k))
    return parallel_merged_scan(noks_for(path_text), doc,
                                counters, per_nok,
                                partitions=fine_partitions(doc, k),
                                backend="processes",
                                process_backend=backend)


OPERATOR_QUERIES = ["//book", "//book/author", "//shelf//title",
                    "//book[@year = '1995']", "//book[price > 25]/title",
                    "//*"]


class TestOperatorBitIdentity:
    """Process output == thread output == serial output, per match list."""

    @pytest.mark.parametrize("path_text", OPERATOR_QUERIES)
    def test_wide_document(self, backend, path_text):
        doc = parse(wide_doc(200))
        self.assert_identical(backend, doc, path_text)

    @pytest.mark.parametrize("path_text",
                             ["//item", "//item/name", "//item[price = 3]",
                              "//giant//name"])
    def test_skewed_single_subtree_document(self, backend, path_text):
        doc = parse(skewed_doc(300))
        self.assert_identical(backend, doc, path_text)

    def assert_identical(self, backend, doc, path_text):
        noks = noks_for(path_text)
        serial = merged_scan(noks, doc)
        threaded = scan_with(doc, path_text)
        processed = scan_with(doc, path_text, backend=backend)
        for nok_id, entries in serial.items():
            want = [e.node.nid for e in entries]
            assert [e.node.nid for e in threaded[nok_id]] == want
            assert [e.node.nid for e in processed[nok_id]] == want

    def test_counters_are_bit_identical_too(self, backend):
        doc = parse(wide_doc(200))
        serial = ScanCounters()
        merged_scan(noks_for("//book/author"), doc, serial)
        processed = ScanCounters()
        scan_with(doc, "//book/author", backend=backend, counters=processed)
        assert processed.nodes_scanned == serial.nodes_scanned
        assert processed.comparisons == serial.comparisons

    def test_per_nok_attribution_crosses_the_process_boundary(self, backend):
        doc = parse(wide_doc(200))
        counters = ScanCounters()
        per_nok = {}
        scan_with(doc, "//book[price > 25]/title", backend=backend,
                  counters=counters, per_nok=per_nok)
        assert per_nok
        assert counters.comparisons == \
            sum(c.comparisons for c in per_nok.values())


class TestWorkloadDifferential:
    """Every datagen workload query under all three backends, end to
    end through the engine (plan choice, scan, FLWOR pipeline,
    serialization)."""

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_three_backends_serialize_identically(self, name):
        dataset = DATASETS[name]
        doc = dataset.generate(scale=0.1)
        pools = ScanPools(thread_workers=2, process_workers=2)
        try:
            for spec in dataset.queries:
                engine = Engine(doc)
                engine.scan_executor = pools.thread_pool()
                engine.process_executor = pools.process_backend()
                serial = engine.query(spec.text).serialize()
                threads = engine.query(
                    spec.text, executor="threads:2").serialize()
                processes = engine.query(
                    spec.text, executor="processes:2").serialize()
                assert serial == threads == processes, (name, spec.text)
        finally:
            pools.close(wait=True)


class TestCancellationAndBudget:
    def test_mid_scan_deadline_expires_in_workers(self, backend):
        doc = parse(wide_doc(400))
        token = CancellationToken(timeout_ms=0.0)
        counters = ScanCounters(cancellation=token)
        with pytest.raises(QueryTimeoutError):
            scan_with(doc, "//book", backend=backend, counters=counters)

    def test_cancel_flag_stops_the_scan(self, backend):
        doc = parse(wide_doc(400))
        token = CancellationToken()
        token.cancel()
        counters = ScanCounters(cancellation=token)
        from repro.errors import QueryCancelledError

        with pytest.raises(QueryCancelledError):
            scan_with(doc, "//book", backend=backend, counters=counters)

    def test_global_budget_caps_work_across_processes(self, backend):
        doc = parse(wide_doc(300))
        parts = fine_partitions(doc, 4)
        per_partition = max(p.n_nodes for p in parts)
        budget = per_partition + 50            # fine per task, not globally
        assert budget < len(doc.nodes)
        counters = ScanCounters(budget=budget)
        with pytest.raises(DNFError):
            parallel_merged_scan(noks_for("//book"), doc, counters,
                                 partitions=parts, backend="processes",
                                 process_backend=backend)
        assert counters.budget_trips >= 1
        assert counters.nodes_scanned <= budget + len(parts) * 256

    def test_partial_counters_fold_after_abort(self, backend):
        doc = parse(wide_doc(300))
        counters = ScanCounters(budget=10)
        with pytest.raises(DNFError):
            scan_with(doc, "//book", backend=backend, counters=counters)
        assert counters.nodes_scanned > 0      # aborted work still counted


def _crash_task(*args, **kwargs):
    os._exit(13)


class TestWorkerCrash:
    def test_crash_raises_clean_error_and_pool_recovers(self):
        doc = parse(wide_doc(200))
        pool = ProcessScanBackend(max_workers=2)
        original = process_scan._scan_partition_task
        # Patch BEFORE the pool forks so the workers inherit the crash.
        process_scan._scan_partition_task = _crash_task
        try:
            with pytest.raises(ExecutionError, match="crashed"):
                scan_with(doc, "//book", backend=pool)
        finally:
            process_scan._scan_partition_task = original
        # The broken pool was discarded; the next scan rebuilds and runs.
        results = scan_with(doc, "//book", backend=pool)
        noks = noks_for("//book")
        serial = merged_scan(noks, doc)
        book_id = next(n.nok_id for n in noks if n.root.name == "book")
        assert [e.node.nid for e in results[book_id]] == \
            [e.node.nid for e in serial[book_id]]
        pool.close(wait=True)


class TestResourceLifecycle:
    def test_fifty_databases_leak_no_fds_or_processes(self):
        import repro

        xml = wide_doc(30)

        def open_fds() -> int:
            return len(os.listdir("/proc/self/fd"))

        def children() -> int:
            return len(multiprocessing.active_children())

        # Warm-up: import side effects, pytest plumbing.
        with repro.connect(xml) as db:
            db.query("//book/title")
        fd_before, procs_before = open_fds(), children()
        for _ in range(50):
            with repro.connect(xml) as db:
                db.query("//book/title")
                db.query("//book/title", executor="threads:2")
        assert children() <= procs_before
        assert open_fds() <= fd_before + 4     # allowance for test noise

    def test_database_close_releases_the_arena_file(self):
        import repro
        from repro.xmlkit.arena import arena_file_for

        db = repro.connect(wide_doc(30))
        path = arena_file_for(db.doc)
        assert os.path.exists(path)
        db.close()
        assert not os.path.exists(path)

    def test_scan_pools_close_is_idempotent(self):
        pools = ScanPools()
        pools.thread_pool()
        pools.close(wait=True)
        pools.close(wait=True)
