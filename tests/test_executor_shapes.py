"""Executor stress tests: FLWOR shapes that exercise every pipeline path.

Each test runs a query shape against the naive oracle under all the
BlossomTree join strategies; shapes are chosen to hit specific executor
machinery (optional cut edges, chains across several NoKs, multiple
mandatory semi-joins, crossing-edge mixes, empty intermediates).
"""

import pytest

from repro.engine import Engine
from repro.xmlkit import parse

DOC = """
<shop>
  <dept name="books">
    <item><name>tcp</name><tag><label>net</label></tag><price>65</price></item>
    <item><name>web</name><price>39</price></item>
    <sub>
      <item><name>ai</name><tag><label>ml</label></tag><price>80</price></item>
    </sub>
  </dept>
  <dept name="music">
    <item><name>jazz</name><price>20</price></item>
  </dept>
  <dept name="empty"/>
</shop>
"""

STRATEGIES = ["pipelined", "caching", "stack", "bnlj", "nl", "cost"]


@pytest.fixture(scope="module")
def engine():
    return Engine(parse(DOC))


def assert_all_agree(engine, query):
    reference = engine.query(query, strategy="naive").serialize()
    for strategy in STRATEGIES:
        got = engine.query(query, strategy=strategy).serialize()
        assert got == reference, f"{strategy}: {got!r} != {reference!r}"
    return reference


class TestAnchoringShapes:
    def test_descendant_for_from_variable(self, engine):
        # $i anchored at $d through a cut edge (optional NoK chains).
        assert_all_agree(engine,
                         "for $d in //dept, $i in $d//item return $i/name")

    def test_let_with_descendant_steps(self, engine):
        # let builds an optional cut edge: empty groups must survive.
        assert_all_agree(engine,
                         "for $d in //dept let $l := $d//label "
                         "return <r>{ count($l) }</r>")

    def test_three_level_variable_chain(self, engine):
        assert_all_agree(engine,
                         "for $d in //dept, $i in $d//item, $t in $i/tag, "
                         "$l in $t/label return $l")

    def test_chain_with_intermediate_unbound_vertices(self, engine):
        # path with two steps between variables: dept -> sub -> item.
        assert_all_agree(engine,
                         "for $d in //dept, $i in $d/sub/item return $i/name")

    def test_for_anchored_at_let(self, engine):
        assert_all_agree(engine,
                         "let $items := //item for $p in $items/price "
                         "return $p")

    def test_let_anchored_at_let(self, engine):
        assert_all_agree(engine,
                         "let $depts := //dept let $names := $depts/item "
                         "return count($names)")

    def test_empty_intermediate_results(self, engine):
        assert_all_agree(engine,
                         "for $d in //dept, $x in $d//nonexistent return $x")

    def test_variable_used_twice_in_where(self, engine):
        assert_all_agree(engine,
                         "for $i in //item "
                         "where $i/price > 30 and $i/price < 70 "
                         "return $i/name")


class TestCorrelationShapes:
    def test_value_join_between_variables(self, engine):
        assert_all_agree(engine,
                         "for $a in //item, $b in //item "
                         "where $a << $b and $a/price < $b/price "
                         "return <p>{ $a/name }{ $b/name }</p>")

    def test_structural_and_value_mix(self, engine):
        assert_all_agree(engine,
                         "for $d in //dept, $i in //item "
                         "where $i/price > 50 and $d/@name = \"books\" "
                         "return <p>{ $i/name }</p>")

    def test_deep_equal_on_derived_paths(self, engine):
        assert_all_agree(engine,
                         "for $a in //item, $b in //item "
                         "where $a << $b and deep-equal($a/tag, $b/tag) "
                         "return <p>{ $a/name }{ $b/name }</p>")

    def test_is_and_isnot(self, engine):
        assert_all_agree(engine,
                         "for $a in //dept, $b in //dept "
                         "where $a isnot $b return <p/>")

    def test_or_in_where_goes_residual(self, engine):
        assert_all_agree(engine,
                         "for $i in //item "
                         'where $i/price < 25 or $i/name = "ai" '
                         "return $i/name")

    def test_quantifier_with_join(self, engine):
        assert_all_agree(engine,
                         "for $d in //dept "
                         "where some $i in $d//item satisfies $i/price > 60 "
                         "return $d/@name")


class TestOutputShapes:
    def test_multiple_enclosed_and_nesting(self, engine):
        assert_all_agree(engine,
                         "for $i in //item return "
                         "<out a=\"x\"><n>{ $i/name }</n>{ $i/price }</out>")

    def test_order_by_derived_key(self, engine):
        assert_all_agree(engine,
                         "for $i in //item order by $i/price descending "
                         "return $i/name")

    def test_nested_flwor_in_return(self, engine):
        assert_all_agree(engine,
                         "for $d in //dept return <d>{"
                         " for $i in $d//item return $i/name }</d>")

    def test_attribute_values_in_output(self, engine):
        assert_all_agree(engine,
                         "for $d in //dept return <r>{ $d/@name }</r>")
