"""Unit tests for the NestedList ADT and the logical operators (Section 3)."""

import pytest

from repro.algebra import join, project, project_sequence, select
from repro.pattern import build_from_path, decompose
from repro.physical import NoKMatcher
from repro.xmlkit import parse
from repro.xpath import parse_xpath


def match_all(doc, path_text):
    """Build, decompose, and run every NoK; returns (tree, dec, matches)."""
    tree = build_from_path(parse_xpath(path_text))
    dec = decompose(tree)
    matches = {}
    for nok in dec.noks:
        matches[nok.nok_id] = NoKMatcher(nok, doc).matches()
    return tree, dec, matches


@pytest.fixture
def abcd_doc():
    # Figure 3(b)-style data: a's with grouped b's, d's and c's.
    return parse("<r><a><b/><b><d>1</d><d>2</d></b><b><d>3</d></b>"
                 "<c/><c/></a></r>")


class TestProjection:
    def test_projection_is_document_ordered(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "/r/a/b/d")
        [entry] = matches[0]
        d_vertex = tree.var_vertex["#result"]
        nodes = project(entry, d_vertex)
        assert [n.string_value() for n in nodes] == ["1", "2", "3"]
        assert [n.nid for n in nodes] == sorted(n.nid for n in nodes)

    def test_projection_on_intermediate_vertex(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "/r/a/b/d")
        [entry] = matches[0]
        b_vertex = tree.var_vertex["#result"].parent_edge.parent
        # Only b's with a d child survive the mandatory edge.
        assert len(project(entry, b_vertex)) == 2

    def test_projection_across_cut_edge_rejected(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "//a//d")
        a_nok = next(n for n in dec.noks if n.root.name == "a")
        [a_entry] = [e for e in matches[a_nok.nok_id]]
        d_vertex = tree.var_vertex["#result"]
        with pytest.raises(KeyError):
            project(a_entry, d_vertex)

    def test_project_sequence_concatenates(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "//b/d")
        b_nok = next(n for n in dec.noks if n.root.name == "b")
        d_vertex = tree.var_vertex["#result"]
        nodes = project_sequence(matches[b_nok.nok_id], d_vertex)
        assert [n.string_value() for n in nodes] == ["1", "2", "3"]


class TestSexpr:
    def test_grouping_notation(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "/r/a/b")
        [entry] = matches[0]
        text = entry.sexpr()
        # three b matches grouped with [] under one a.
        assert "[(b),(b),(b)]" in text.replace(" ", "")

    def test_custom_labeller(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "/r/a")
        [entry] = matches[0]
        counter = {}

        def label(node):
            counter[node.tag] = counter.get(node.tag, 0) + 1
            return f"{node.tag}{counter[node.tag]}"

        assert "a1" in entry.sexpr(label)


class TestSelect:
    def test_select_filters_items(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "/r/a/b/d")
        d_vertex = tree.var_vertex["#result"]
        kept = select(matches[0], d_vertex,
                      lambda n: n.string_value() != "2")
        [entry] = kept
        assert [n.string_value() for n in project(entry, d_vertex)] == ["1", "3"]

    def test_select_cascades_mandatory_removal(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "/r/a/b/d")
        d_vertex = tree.var_vertex["#result"]
        # Removing every d invalidates every b (mandatory), then a, then
        # the whole NestedList.
        assert select(matches[0], d_vertex, lambda n: False) == []

    def test_select_does_not_mutate_input(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "/r/a/b/d")
        d_vertex = tree.var_vertex["#result"]
        before = project(matches[0][0], d_vertex)
        select(matches[0], d_vertex, lambda n: False)
        assert project(matches[0][0], d_vertex) == before


class TestJoin:
    def test_join_combines_on_predicate(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "//a//d")
        a_nok = next(n for n in dec.noks if n.root.name == "a")
        d_nok = next(n for n in dec.noks if n.root.name == "d")
        a_vertex = a_nok.root
        d_vertex = d_nok.root

        def desc(lnodes, rnodes):
            return any(l.is_ancestor_of(r) for l in lnodes for r in rnodes)

        combined = join(matches[a_nok.nok_id], matches[d_nok.nok_id],
                        desc, a_vertex, d_vertex)
        # one a × three d's below it
        assert len(combined) == 3
        for item in combined:
            assert len(item.project(a_vertex)) == 1
            assert len(item.project(d_vertex)) == 1

    def test_join_composes_over_combined(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "//a//b//d")
        a_nok = next(n for n in dec.noks if n.root.name == "a")
        b_nok = next(n for n in dec.noks if n.root.name == "b")
        d_nok = next(n for n in dec.noks if n.root.name == "d")

        def desc(lnodes, rnodes):
            return any(l.is_ancestor_of(r) for l in lnodes for r in rnodes)

        step1 = join(matches[a_nok.nok_id], matches[b_nok.nok_id],
                     desc, a_nok.root, b_nok.root)
        step2 = join(step1, matches[d_nok.nok_id], desc,
                     b_nok.root, d_nok.root)
        # (a,b1,d?) b with two d's + b with one d -> but join is at the
        # NestedList level: each (a,b) pairs with d's below ANY b... the
        # predicate projects b from the combined item, so pairs are
        # (a,b2,d1) (a,b2,d2) (a,b3,d3) and cross pairs are filtered.
        assert len(step2) == 3


class TestEntryBasics:
    def test_group_for_unknown_child(self, abcd_doc):
        tree, dec, matches = match_all(abcd_doc, "/r/a")
        [entry] = matches[0]
        stranger = tree.var_vertex["#result"]
        with pytest.raises(KeyError):
            entry.group_for(stranger)
