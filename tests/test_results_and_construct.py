"""Unit tests for result construction, QueryResult and order keys."""

import pytest

from repro.engine.construct import DirectEvaluator, order_key
from repro.engine.result import QueryResult, ResultBuilder, atom_text, copy_into
from repro.errors import ExecutionError
from repro.xmlkit import serialize
from repro.xmlkit.tree import DocumentBuilder
from repro.xpath.evaluator import AttrNode


class TestResultBuilder:
    def test_simple_construction(self):
        builder = ResultBuilder()
        builder.start_element("out", {"k": "v"})
        builder.text("hello")
        builder.end_element()
        node = builder.finish()
        assert serialize(node) == '<out k="v">hello</out>'

    def test_unbalanced_rejected(self):
        builder = ResultBuilder()
        builder.start_element("out")
        with pytest.raises(ExecutionError):
            builder.finish()
        builder2 = ResultBuilder()
        with pytest.raises(ExecutionError):
            builder2.end_element()

    def test_add_item_copies_nodes(self, small_bib):
        title = small_bib.elements_by_tag("title")[0]
        builder = ResultBuilder()
        builder.start_element("wrap")
        builder.add_item(title)
        builder.end_element()
        node = builder.finish()
        inner = node.children[0]
        assert inner.tag == "title"
        assert inner is not title and inner.doc is not small_bib
        assert inner.string_value() == title.string_value()

    def test_add_items_space_separates_atoms(self):
        builder = ResultBuilder()
        builder.start_element("n")
        builder.add_items([1.0, 2.0, "three"])
        builder.end_element()
        assert builder.finish().string_value() == "1 2 three"

    def test_attr_node_item_becomes_text(self, small_bib):
        builder = ResultBuilder()
        builder.start_element("y")
        builder.add_item(AttrNode(small_bib.root, "k", "1994"))
        builder.end_element()
        assert builder.finish().string_value() == "1994"

    def test_copy_into_document_node(self, small_bib):
        builder = DocumentBuilder()
        builder.start_element("holder")
        copy_into(builder, small_bib.document_node)
        builder.end_element()
        doc = builder.finish()
        assert doc.root.children[0].tag == "bib"


class TestQueryResult:
    def test_serialize_mixes_nodes_and_atoms(self, small_bib):
        title = small_bib.elements_by_tag("title")[0]
        result = QueryResult([title, 1.0, 2.0, "x"])
        assert result.serialize() == serialize(title) + "1 2 x"

    def test_nodes_filters_atoms(self, small_bib):
        result = QueryResult([small_bib.root, 3.0])
        assert len(result.nodes()) == 1
        assert len(result) == 2

    def test_string_values(self, small_bib):
        price = small_bib.elements_by_tag("price")[0]
        result = QueryResult([price, True, 2.5])
        assert result.string_values() == ["65.95", "true", "2.5"]

    def test_pretty_contains_content(self, small_bib):
        result = QueryResult([small_bib.elements_by_tag("author")[0]])
        assert "Stevens" in result.pretty()

    def test_iteration_and_indexing(self):
        result = QueryResult(["a", "b"])
        assert list(result) == ["a", "b"]
        assert result[1] == "b"


class TestAtomText:
    def test_float_formatting(self):
        assert atom_text(3.0) == "3"
        assert atom_text(3.5) == "3.5"

    def test_booleans(self):
        assert atom_text(True) == "true"
        assert atom_text(False) == "false"

    def test_node_string_value(self, small_bib):
        assert atom_text(small_bib.elements_by_tag("last")[0]) == "Stevens"


class TestOrderKey:
    def test_numeric_before_textual(self):
        assert order_key("10", False) < order_key("banana", False)

    def test_numeric_ordering(self):
        assert order_key("2", False) < order_key("10", False)
        assert order_key("10", True) < order_key("2", True)

    def test_text_ordering(self):
        assert order_key("apple", False) < order_key("banana", False)
        assert order_key("banana", True) < order_key("apple", True)

    def test_node_list_uses_first_string_value(self, small_bib):
        lasts = small_bib.elements_by_tag("last")
        assert order_key([lasts[1]], False) < order_key([lasts[0]], False)

    def test_empty_sequence(self):
        key = order_key([], False)
        assert key == order_key("", False)


class TestDirectEvaluatorUnits:
    def test_check_where_none_is_true(self, small_bib):
        evaluator = DirectEvaluator(small_bib)
        assert evaluator.check_where(None, {}) is True

    def test_order_tuples_stable(self, small_bib):
        from repro.xquery.parser import parse_flwor
        flwor = parse_flwor("for $b in //book order by $b/@year return $b")
        evaluator = DirectEvaluator(small_bib)
        books = small_bib.elements_by_tag("book")
        tuples = [{"b": [b]} for b in books]
        ordered = evaluator.order_tuples(flwor.order_by, tuples)
        years = [t["b"][0].attrs["year"] for t in ordered]
        assert years == ["1994", "1999", "2000"]
