"""White-box tests for the FLWORExecutor pipeline phases."""

import pytest

from repro.engine.executor import FLWORExecutor, _nok_depths
from repro.pattern import decompose
from repro.xmlkit import parse
from repro.xmlkit.storage import ScanCounters
from repro.xpath import parse_xpath
from repro.xquery import parse_flwor
from repro.pattern.build import build_from_path


@pytest.fixture
def doc():
    return parse("<r><a><b><c/></b></a><a><b/></a><a/></r>")


class TestPhases:
    def test_match_phase_merges_by_document(self, doc):
        executor = FLWORExecutor(doc, counters=ScanCounters())
        flwor = parse_flwor("for $a in //a, $b in //b return $a")
        executor.execute(flwor)
        merged_notes = [n for n in executor.plan_notes if "merged scan" in n]
        assert len(merged_notes) == 1  # one document, one scan
        assert executor.counters.scans_started == 1

    def test_join_phase_semi_join_reduces(self, doc):
        # //a//c : only the first a survives the mandatory reduction.
        executor = FLWORExecutor(doc, join_algorithm="stack")
        flwor = parse_flwor("for $x in //a//c return $x")
        items = executor.execute(flwor)
        assert len(items) == 1
        # adjacency recorded for the a->c edge
        assert any(result.pair_count() == 1
                   for result in executor._adjacency.values())

    def test_vacuous_root_join_noted(self, doc):
        executor = FLWORExecutor(doc, join_algorithm="stack")
        executor.execute(parse_flwor("for $a in //a return $a"))
        assert any("vacuous" in note for note in executor.plan_notes)

    def test_join_algorithm_recorded_in_notes(self, doc):
        for algorithm in ("stack", "bnlj", "nl"):
            executor = FLWORExecutor(doc, join_algorithm=algorithm)
            executor.execute(parse_flwor("for $x in //a//b return $x"))
            assert any(algorithm in note for note in executor.plan_notes), \
                algorithm

    def test_auto_algorithm_uses_recursion_hint(self, doc):
        executor = FLWORExecutor(doc, join_algorithm="auto",
                                 recursive_hint=True)
        executor.execute(parse_flwor("for $x in //a//b return $x"))
        assert any("stack" in note for note in executor.plan_notes)
        executor = FLWORExecutor(doc, join_algorithm="auto",
                                 recursive_hint=False)
        executor.execute(parse_flwor("for $x in //a//b return $x"))
        assert any("pipelined" in note for note in executor.plan_notes)

    def test_unknown_algorithm_rejected(self, doc):
        with pytest.raises(ValueError):
            FLWORExecutor(doc, join_algorithm="bogus")


class TestNokDepths:
    def test_chain_depths(self):
        tree = build_from_path(parse_xpath("//a//b//c"))
        dec = decompose(tree)
        depths = _nok_depths(dec)
        by_name = {dec.noks[i].root.name: d for i, d in depths.items()}
        assert by_name["#root"] == 0
        assert by_name["a"] == 1
        assert by_name["b"] == 2
        assert by_name["c"] == 3

    def test_branching_depths(self):
        tree = build_from_path(parse_xpath("//a[//b]//c"))
        dec = decompose(tree)
        depths = _nok_depths(dec)
        by_name = {dec.noks[i].root.name: d for i, d in depths.items()}
        assert by_name["b"] == by_name["c"] == 2


class TestTupleEnumeration:
    def test_candidates_deduplicate_through_descendant_hops(self):
        # The same c is reachable under two nested a ancestors; the
        # for-variable must bind it once (XPath set semantics).
        doc = parse("<r><a><a><c/></a></a></r>")
        executor = FLWORExecutor(doc, join_algorithm="stack")
        items = executor.execute(parse_flwor("for $x in //a//c return $x"))
        assert len(items) == 1

    def test_candidates_in_document_order(self):
        doc = parse("<r><a><c i='1'/></a><a><c i='2'/><c i='3'/></a></r>")
        executor = FLWORExecutor(doc, join_algorithm="stack")
        items = executor.execute(parse_flwor("for $x in //a//c return $x"))
        assert [n.attrs["i"] for n in items] == ["1", "2", "3"]

    def test_let_binds_full_sequence_per_tuple(self):
        doc = parse("<r><a><b/><b/></a><a><b/></a></r>")
        executor = FLWORExecutor(doc, join_algorithm="stack")
        items = executor.execute(parse_flwor(
            "for $a in //a let $bs := $a/b return <n>{ count($bs) }</n>"))
        assert [n.string_value() for n in items] == ["2", "1"]


class TestNestedLoopReconciliation:
    """Regression: nested-loop joins re-discover inner matches by
    scanning, which must not resurrect entries a deeper mandatory join
    already eliminated (found by hypothesis on //a[a]//a[//a])."""

    def test_deeper_semi_join_survives_rematch(self):
        doc = parse("<r><a><a></a><a><a></a></a></a></r>")
        from repro.engine import Engine

        engine = Engine(doc)
        query = "//a[a]//a[//a]"
        reference = [n.nid for n in engine.query(query, strategy="naive").nodes()]
        assert reference == [4]
        for strategy in ("bnlj", "nl", "stack", "caching", "twigstack"):
            got = [n.nid for n in engine.query(query, strategy=strategy).nodes()]
            assert got == reference, strategy

    def test_chained_joins_with_existential_midpoints(self):
        doc = parse("<r><x><y><k/><z i='1'/></y><y><z i='2'/></y></x></r>")
        from repro.engine import Engine

        engine = Engine(doc)
        # y must have a k descendant; only the first z qualifies.
        query = "//x//y[//k]//z"
        for strategy in ("naive", "bnlj", "nl", "stack"):
            got = [n.attrs["i"] for n in
                   engine.query(query, strategy=strategy).nodes()]
            assert got == ["1"], strategy
