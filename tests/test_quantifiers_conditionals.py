"""Tests for the XQuery-surface extensions: some/every and if-then-else."""

import pytest

from repro.engine import Engine
from repro.errors import QuerySyntaxError
from repro.xpath import parse_expr
from repro.xpath.ast import Conditional, Quantified
from repro.xpath.evaluator import EvalContext, XPathEvaluator


class TestParsing:
    def test_some(self):
        expr = parse_expr('some $x in //a satisfies $x/b = "1"')
        assert isinstance(expr, Quantified)
        assert expr.kind == "some" and expr.var == "x"

    def test_every(self):
        expr = parse_expr("every $x in //a satisfies $x/b")
        assert expr.kind == "every"

    def test_nested_quantifier(self):
        expr = parse_expr(
            "some $x in //a satisfies every $y in $x/b satisfies $y/c")
        assert isinstance(expr.satisfies, Quantified)

    def test_conditional(self):
        expr = parse_expr('if (//a) then "yes" else "no"')
        assert isinstance(expr, Conditional)

    def test_str_round_trip(self):
        text = "some $x in //a satisfies $x/b"
        assert str(parse_expr(str(parse_expr(text)))) == str(parse_expr(text))

    def test_missing_satisfies(self):
        with pytest.raises(QuerySyntaxError):
            parse_expr("some $x in //a")

    def test_if_requires_else(self):
        with pytest.raises(QuerySyntaxError):
            parse_expr('if (//a) then "x"')


class TestEvaluation:
    def _eval(self, doc, text, variables=None):
        context = EvalContext(doc.document_node, variables=dict(variables or {}),
                              resolve_doc=lambda uri: doc)
        return XPathEvaluator().evaluate(parse_expr(text), context)

    def test_some_over_nodes(self, small_bib):
        assert self._eval(small_bib,
                          "some $b in //book satisfies $b/price > 60") is True
        assert self._eval(small_bib,
                          "some $b in //book satisfies $b/price > 100") is False

    def test_every_over_nodes(self, small_bib):
        assert self._eval(small_bib,
                          "every $b in //book satisfies $b/price") is True
        assert self._eval(small_bib,
                          "every $b in //book satisfies $b/author") is False

    def test_vacuous_truth(self, small_bib):
        assert self._eval(small_bib,
                          "every $b in //missing satisfies $b/x") is True
        assert self._eval(small_bib,
                          "some $b in //missing satisfies $b/x") is False

    def test_quantifier_variable_scoping(self, small_bib):
        # Outer variable unaffected by the quantifier's binding.
        book = small_bib.elements_by_tag("book")[0]
        value = self._eval(
            small_bib,
            "some $x in //book satisfies $x isnot $y",
            variables={"y": [book]})
        assert value is True

    def test_conditional_branches(self, small_bib):
        assert self._eval(small_bib, 'if (//book) then "y" else "n"') == "y"
        assert self._eval(small_bib, 'if (//nothing) then "y" else "n"') == "n"

    def test_conditional_lazy_branch_choice(self, small_bib):
        # The untaken branch may reference an unbound variable without
        # erroring, because it is never evaluated.
        assert self._eval(small_bib,
                          'if (//book) then "ok" else $boom/x') == "ok"


class TestInFLWOR:
    def test_quantifier_in_where(self, small_bib):
        engine = Engine(small_bib)
        query = ("for $b in //book "
                 'where some $a in $b/author satisfies $a/last = "Buneman" '
                 "return $b/title")
        reference = engine.query(query, strategy="naive")
        assert reference.string_values() == ["Data on the Web"]
        # The quantifier lands in residual_where: every strategy agrees.
        for strategy in ("pipelined", "stack", "bnlj"):
            assert engine.query(query, strategy=strategy).string_values() == \
                reference.string_values(), strategy

    def test_every_in_where(self, small_bib):
        engine = Engine(small_bib)
        query = ("for $b in //book "
                 "where every $p in $b/price satisfies $p > 39 "
                 "return $b/title")
        got = engine.query(query, strategy="stack").string_values()
        assert got == ["TCP/IP Illustrated", "Data on the Web"]

    def test_conditional_in_predicate_falls_back(self, small_bib):
        engine = Engine(small_bib)
        # Conditionals inside step predicates reference no variables, so
        # they ride along as navigational vertex checks.
        result = engine.query(
            '//book[if (author) then price > 39 else price < 39]/title')
        assert result.string_values() == \
            ["TCP/IP Illustrated", "Data on the Web", "Economics"]
