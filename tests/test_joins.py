"""Unit tests for the structural join operators (Section 4.2 / 4.3).

All join algorithms must produce identical adjacency on identical
inputs; the pipelined merge additionally refuses nesting input, and the
caching/stack variants report their memory in ``peak_buffered``.
"""

import pytest

from repro.errors import ExecutionError
from repro.pattern import build_from_path, decompose
from repro.physical import (
    NoKMatcher,
    bounded_nested_loop_join,
    caching_desc_join,
    left_projection,
    naive_nested_loop_join,
    nested_loop_pairs,
    pipelined_desc_join,
    stack_desc_join,
    stack_join_pairs,
)
from repro.xmlkit import parse
from repro.xmlkit.storage import ScanCounters
from repro.xpath import parse_xpath


def setup_join(doc, path_text):
    """Decompose a two-NoK path and return everything a join needs."""
    tree = build_from_path(parse_xpath(path_text))
    dec = decompose(tree)
    edge = next(e for e in dec.inter_edges if e.parent.name != "#root")
    left_nok = dec.noks[edge.nok_from]
    right_nok = dec.noks[edge.nok_to]
    left = NoKMatcher(left_nok, doc).matches()
    right = NoKMatcher(right_nok, doc).matches()
    projection = left_projection(left, edge)
    return tree, dec, edge, projection, right, right_nok


def adjacency_nids(result):
    return {k: sorted(e.node.nid for e in v)
            for k, v in result.adjacency.items()}


@pytest.fixture
def flat_doc():
    return parse("<r><a><b/><c><b/></c></a><a><x/></a><a><b/></a></r>")


@pytest.fixture
def nested_doc():
    # a's nest inside a's: the pipelined merge must refuse this.
    return parse("<r><a><a><b/></a><b/></a><a><b/></a></r>")


class TestAlgorithmAgreement:
    def test_all_algorithms_agree_flat(self, flat_doc):
        tree, dec, edge, proj, right, right_nok = setup_join(flat_doc, "//a//b")
        results = {
            "pl": pipelined_desc_join(proj, right, edge),
            "cache": caching_desc_join(proj, right, edge),
            "stack": stack_desc_join(proj, right, edge),
            "bnlj": bounded_nested_loop_join(proj, right_nok, flat_doc, edge),
            "naive": naive_nested_loop_join(proj, right_nok, flat_doc, edge),
        }
        reference = adjacency_nids(results["pl"])
        assert reference  # non-empty join
        for name, result in results.items():
            assert adjacency_nids(result) == reference, name

    def test_nesting_algorithms_agree_recursive(self, nested_doc):
        tree, dec, edge, proj, right, right_nok = setup_join(nested_doc, "//a//b")
        results = {
            "cache": caching_desc_join(proj, right, edge),
            "stack": stack_desc_join(proj, right, edge),
            "bnlj": bounded_nested_loop_join(proj, right_nok, nested_doc, edge),
            "naive": naive_nested_loop_join(proj, right_nok, nested_doc, edge),
        }
        reference = adjacency_nids(results["cache"])
        for name, result in results.items():
            assert adjacency_nids(result) == reference, name
        # The inner b pairs with BOTH nested a ancestors.
        inner_b = [nid for nid, partners in reference.items()
                   if len(partners) >= 1]
        assert len(inner_b) == 3

    def test_pipelined_refuses_nesting_input(self, nested_doc):
        tree, dec, edge, proj, right, right_nok = setup_join(nested_doc, "//a//b")
        with pytest.raises(ExecutionError):
            pipelined_desc_join(proj, right, edge)


class TestMemoryAccounting:
    def test_pipelined_is_constant_memory(self, flat_doc):
        counters = ScanCounters()
        tree, dec, edge, proj, right, _ = setup_join(flat_doc, "//a//b")
        pipelined_desc_join(proj, right, edge, counters)
        assert counters.peak_buffered <= 1

    def test_caching_memory_tracks_recursion_degree(self):
        # recursion degree 4: four nested a's.
        doc = parse("<r><a><a><a><a><b/></a></a></a></a></r>")
        tree, dec, edge, proj, right, _ = setup_join(doc, "//a//b")
        counters = ScanCounters()
        caching_desc_join(proj, right, edge, counters)
        assert counters.peak_buffered == 4

    def test_bnlj_scans_are_bounded_by_subtrees(self, flat_doc):
        tree, dec, edge, proj, right, right_nok = setup_join(flat_doc, "//a//b")
        bounded = ScanCounters()
        bounded_nested_loop_join(proj, right_nok, flat_doc, edge, bounded)
        naive = ScanCounters()
        naive_nested_loop_join(proj, right_nok, flat_doc, edge, naive)
        assert bounded.nodes_scanned < naive.nodes_scanned


class TestPairJoins:
    def test_nested_loop_pairs_cartesian_filter(self):
        pairs = nested_loop_pairs([1, 2, 3], [2, 3], lambda a, b: a < b)
        assert pairs == [(1, 2), (1, 3), (2, 3)]

    def test_comparison_counting(self):
        counters = ScanCounters()
        nested_loop_pairs([1, 2], [1, 2, 3], lambda a, b: True, counters)
        assert counters.comparisons == 6

    def test_stack_join_pairs_payloads(self, flat_doc):
        a_nodes = flat_doc.elements_by_tag("a")
        b_nodes = [(n, f"payload{i}") for i, n in
                   enumerate(flat_doc.elements_by_tag("b"))]
        out = stack_join_pairs(a_nodes, b_nodes)
        payloads = {p for _, (_, p) in out}
        assert payloads == {"payload0", "payload1", "payload2"}


class TestOrderPreservation:
    def test_merge_join_output_ordered_by_left(self, flat_doc):
        # Theorem 2: with document-ordered inputs on a non-recursive
        # document, iterating adjacency in left-node order gives
        # document-ordered right nodes overall.
        tree, dec, edge, proj, right, _ = setup_join(flat_doc, "//a//b")
        result = pipelined_desc_join(proj, right, edge)
        flattened = []
        for node in proj:
            for entry in result.partners(node):
                flattened.append(entry.node.nid)
        assert flattened == sorted(flattened)

    def test_example5_order_violation(self, paper_bib):
        """Example 5: the <<-join is NOT order preserving.

        Joining books b1..b4 pairwise with b_i << b_j and projecting the
        second component yields [b2,b3,b4,b3,b4,b4] — not document
        order, exactly the paper's counterexample."""
        books = paper_bib.elements_by_tag("book")
        pairs = nested_loop_pairs(books, books, lambda x, y: x.nid < y.nid)
        projected = [y.nid for _, y in pairs]
        assert projected != sorted(projected)
        # the paper's sequence shape: strictly increasing runs per outer
        assert len(pairs) == 6
