"""Tests for the naive oracle interpreter and the X-Hive simulator."""

import pytest

from repro.baseline import NaiveInterpreter, XHiveSimulator
from repro.errors import DNFError
from repro.xmlkit import parse
from repro.xmlkit.storage import ScanCounters


class TestNaiveInterpreter:
    def test_re_evaluates_paths_per_iteration(self, small_bib):
        """The defining (intentionally wasteful) behaviour: the inner
        for-path is evaluated once per outer tuple."""
        interpreter = NaiveInterpreter(small_bib)
        result = interpreter.run(
            "for $a in //book, $b in //book return <p/>")
        assert len(result) == 9

    def test_work_budget(self, small_bib):
        interpreter = NaiveInterpreter(small_bib, work_budget=4)
        with pytest.raises(DNFError):
            interpreter.run("for $a in //book, $b in //book return <p/>")

    def test_where_filters_tuples(self, small_bib):
        result = NaiveInterpreter(small_bib).run(
            "for $a in //book, $b in //book where $a << $b return <p/>")
        assert len(result) == 3

    def test_let_sequence_semantics(self, small_bib):
        result = NaiveInterpreter(small_bib).run(
            "let $a := //author return count($a)")
        assert result.items == [3.0]

    def test_empty_for_yields_nothing(self, small_bib):
        result = NaiveInterpreter(small_bib).run(
            "for $x in //nothing return <p/>")
        assert len(result) == 0

    def test_nested_flwor_in_return(self, small_bib):
        result = NaiveInterpreter(small_bib).run(
            "for $b in //book return <r>{ for $a in $b/author return $a/last }</r>")
        assert len(result) == 3
        assert "Abiteboul" in result.nodes()[1].string_value()

    def test_construction_copies_nodes(self, small_bib):
        result = NaiveInterpreter(small_bib).run(
            "for $t in //title return <w>{ $t }</w>")
        wrapped = result.nodes()[0]
        inner = wrapped.children[0]
        assert inner.tag == "title"
        assert inner.doc is not small_bib  # constructor copies

    def test_atoms_in_construction_space_separated(self, small_bib):
        result = NaiveInterpreter(small_bib).run(
            "for $b in //book[1] return <n>{ count($b/author), count($b/price) }</n>")
        assert result.nodes()[0].string_value() == "1 1"

    def test_order_by_stability(self):
        doc = parse("<r><x k='b'>1</x><x k='a'>2</x><x k='b'>3</x></r>")
        result = NaiveInterpreter(doc).run(
            "for $x in //x order by $x/@k return $x")
        assert [n.string_value() for n in result.nodes()] == ["2", "1", "3"]


class TestXHiveSimulator:
    def test_same_results_as_oracle(self, small_bib):
        query = "//book[author]//last"
        oracle = NaiveInterpreter(small_bib).run(query)
        xhive = XHiveSimulator(small_bib).run(query)
        assert xhive.serialize() == oracle.serialize()

    def test_charges_navigation_work(self, small_bib):
        counters = ScanCounters()
        XHiveSimulator(small_bib, counters=counters).run("//book//last")
        # //book from the root examines all nodes; //last re-descends
        # from each book: strictly more work than one scan.
        assert counters.nodes_scanned > len(small_bib.nodes)

    def test_predicates_multiply_work(self, small_bib):
        plain = ScanCounters()
        XHiveSimulator(small_bib, counters=plain).run("//book")
        heavy = ScanCounters()
        XHiveSimulator(small_bib, counters=heavy).run(
            "//book[//last][//first][//price]")
        assert heavy.nodes_scanned > plain.nodes_scanned

    def test_budget_dnf(self, small_bib):
        counters = ScanCounters(budget=10)
        with pytest.raises(DNFError):
            XHiveSimulator(small_bib, counters=counters).run("//book//last")

    def test_flwor_supported(self, small_bib):
        result = XHiveSimulator(small_bib).run(
            "for $b in //book where $b/price > 30 return $b/title")
        assert len(result) == 2
