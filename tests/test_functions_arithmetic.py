"""Tests for the extended function library and arithmetic expressions."""

import math

import pytest

from repro.engine import Engine
from repro.errors import ExecutionError
from repro.xmlkit import parse
from repro.xpath import parse_expr
from repro.xpath.evaluator import EvalContext, XPathEvaluator


@pytest.fixture(scope="module")
def prices_doc():
    return parse("<r><p>10</p><p>25.5</p><p>20</p><p>20</p>"
                 "<w>Hello World</w></r>")


def ev(doc, text, variables=None):
    context = EvalContext(doc.document_node, variables=dict(variables or {}),
                          resolve_doc=lambda uri: doc)
    return XPathEvaluator().evaluate(parse_expr(text), context)


class TestAggregates:
    def test_sum_avg_min_max(self, prices_doc):
        assert ev(prices_doc, "sum(//p)") == 75.5
        assert ev(prices_doc, "avg(//p)") == pytest.approx(18.875)
        assert ev(prices_doc, "min(//p)") == 10.0
        assert ev(prices_doc, "max(//p)") == 25.5

    def test_sum_of_empty_is_zero(self, prices_doc):
        assert ev(prices_doc, "sum(//nothing)") == 0.0

    def test_min_of_empty_errors(self, prices_doc):
        with pytest.raises(ExecutionError):
            ev(prices_doc, "min(//nothing)")

    def test_non_numeric_gives_nan(self, prices_doc):
        assert math.isnan(ev(prices_doc, "sum(//w)"))

    def test_distinct_values(self, prices_doc):
        assert ev(prices_doc, "count(distinct-values(//p))") == 3.0
        assert ev(prices_doc, "count(//p)") == 4.0


class TestNumeric:
    def test_rounding_family(self, prices_doc):
        assert ev(prices_doc, "floor(2.8)") == 2.0
        assert ev(prices_doc, "ceiling(2.2)") == 3.0
        assert ev(prices_doc, "round(2.5)") == 3.0
        assert ev(prices_doc, "round(2.4)") == 2.0
        assert ev(prices_doc, "abs(2 - 10)") == 8.0


class TestStrings:
    def test_substring(self, prices_doc):
        assert ev(prices_doc, "substring(//w, 7)") == "World"
        assert ev(prices_doc, "substring(//w, 1, 5)") == "Hello"

    def test_substring_before_after(self, prices_doc):
        assert ev(prices_doc, 'substring-before(//w, " ")') == "Hello"
        assert ev(prices_doc, 'substring-after(//w, " ")') == "World"
        assert ev(prices_doc, 'substring-before(//w, "zz")') == ""

    def test_translate(self, prices_doc):
        assert ev(prices_doc, 'translate(//w, "lo", "01")') == "He001 W1r0d"
        # removal: source chars without a destination are dropped.
        assert ev(prices_doc, 'translate(//w, "lo", "")') == "He Wrd"

    def test_case_functions(self, prices_doc):
        assert ev(prices_doc, "upper-case(//w)") == "HELLO WORLD"
        assert ev(prices_doc, "lower-case(//w)") == "hello world"

    def test_boolean_function(self, prices_doc):
        assert ev(prices_doc, "boolean(//p)") is True
        assert ev(prices_doc, "boolean(//none)") is False


class TestArithmetic:
    def test_precedence(self, prices_doc):
        assert ev(prices_doc, "1 + 2 * 3") == 7.0
        assert ev(prices_doc, "10 - 2 - 3") == 5.0  # left associative
        assert ev(prices_doc, "(1 + 2) * 3") == 9.0

    def test_div_and_mod(self, prices_doc):
        assert ev(prices_doc, "7 div 2") == 3.5
        assert ev(prices_doc, "7 mod 2") == 1.0
        assert ev(prices_doc, "1 div 0") == float("inf")
        assert math.isnan(ev(prices_doc, "0 div 0"))

    def test_node_operands_coerce(self, prices_doc):
        assert ev(prices_doc, "sum(//p) div count(//p)") == pytest.approx(18.875)

    def test_arithmetic_in_predicate(self, prices_doc):
        nodes = ev(prices_doc, "//p[. > 10 + 5]")
        assert [n.string_value() for n in nodes] == ["25.5", "20", "20"]

    def test_arithmetic_in_where(self):
        doc = parse("<r><i><q>2</q><c>5</c></i><i><q>4</q><c>1</c></i></r>")
        engine = Engine(doc)
        query = ("for $i in //i where $i/q * $i/c > 8 "
                 "return <v>{ $i/q }</v>")
        reference = engine.query(query, strategy="naive").serialize()
        assert reference == "<v><q>2</q></v>"
        for strategy in ("stack", "bnlj"):
            assert engine.query(query, strategy=strategy).serialize() == \
                reference

    def test_aggregate_in_return(self, prices_doc):
        engine = Engine(prices_doc)
        result = engine.query(
            "for $r in //r return <t>{ sum($r/p) }</t>")
        assert result.nodes()[0].string_value() == "75.5"

    def test_wildcard_star_still_works(self, prices_doc):
        engine = Engine(prices_doc)
        assert len(engine.query("/r/*")) == 5
