"""Unit tests for the tree parser and the node/document model."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlkit import parse, serialize
from repro.xmlkit.tree import (
    DOCUMENT,
    ELEMENT,
    TEXT,
    DocumentBuilder,
    deep_equal,
    deep_equal_sequences,
)


class TestParserWellFormedness:
    def test_mismatched_end_tag(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b></a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b>")

    def test_stray_end_tag(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/></b>")

    def test_two_roots_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/><b/>")

    def test_text_outside_root_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/>junk")

    def test_whitespace_outside_root_allowed(self):
        doc = parse("  <a/>  ")
        assert doc.root.tag == "a"

    def test_empty_input_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("")


class TestTreeStructure:
    def test_document_node_is_nid_zero(self, small_bib):
        assert small_bib.document_node.nid == 0
        assert small_bib.document_node.kind == DOCUMENT
        assert small_bib.root.parent is small_bib.document_node

    def test_preorder_nids_are_document_order(self, small_bib):
        nids = [n.nid for n in small_bib.nodes]
        assert nids == sorted(nids)
        assert nids == list(range(len(small_bib.nodes)))

    def test_region_labels_nest_properly(self, small_bib):
        for node in small_bib.nodes:
            assert node.start < node.end
            for child in node.children:
                assert node.start < child.start
                assert child.end < node.end
                assert child.level == node.level + 1

    def test_subtree_size_matches_iteration(self, small_bib):
        for node in small_bib.nodes:
            assert node.subtree_size() == sum(1 for _ in node.subtree())

    def test_adjacent_text_merged(self):
        doc = parse("<a>one&amp;two</a>")
        texts = [n for n in doc.nodes if n.kind == TEXT]
        assert len(texts) == 1
        assert texts[0].text == "one&two"

    def test_first_child_and_following_sibling(self, small_bib):
        books = small_bib.elements_by_tag("book")
        # following_sibling is node-kind-agnostic: whitespace text nodes
        # between the books are real siblings.
        sibling = books[0].following_sibling()
        while sibling is not None and sibling.kind != ELEMENT:
            sibling = sibling.following_sibling()
        assert sibling is books[1]
        assert books[2].following_sibling() is None or \
            books[2].following_sibling().kind == TEXT
        assert small_bib.root.first_child() is not None

    def test_next_in_document(self, small_bib):
        node = small_bib.document_node
        count = 0
        while node is not None:
            count += 1
            node = node.next_in_document()
        assert count == len(small_bib.nodes)

    def test_ancestors(self, small_bib):
        last = small_bib.elements_by_tag("last")[0]
        tags = [n.tag for n in last.ancestors()]
        assert tags == ["author", "book", "bib", "#document"]

    def test_structural_predicates(self, small_bib):
        bib = small_bib.root
        book = small_bib.elements_by_tag("book")[0]
        last = small_bib.elements_by_tag("last")[0]
        assert bib.is_ancestor_of(book)
        assert bib.is_ancestor_of(last)
        assert not book.is_ancestor_of(bib)
        assert bib.is_parent_of(book)
        assert not bib.is_parent_of(last)
        assert book.precedes(last)

    def test_dewey_labels(self):
        doc = parse("<a><b/><c><d/></c></a>")
        assert doc.root.dewey() == (1,)
        assert doc.elements_by_tag("b")[0].dewey() == (1, 1)
        assert doc.elements_by_tag("c")[0].dewey() == (1, 2)
        assert doc.elements_by_tag("d")[0].dewey() == (1, 2, 1)


class TestValues:
    def test_string_value_concatenates_text(self):
        doc = parse("<a>one<b>two</b>three</a>")
        assert doc.root.string_value() == "onetwothree"

    def test_typed_value_numeric(self, small_bib):
        price = small_bib.elements_by_tag("price")[0]
        assert price.typed_value() == 65.95

    def test_typed_value_string(self, small_bib):
        title = small_bib.elements_by_tag("title")[0]
        assert title.typed_value() == "TCP/IP Illustrated"

    def test_elements_by_tag_in_document_order(self, small_bib):
        authors = small_bib.elements_by_tag("author")
        assert [a.nid for a in authors] == sorted(a.nid for a in authors)
        assert len(authors) == 3

    def test_distinct_tags(self, small_bib):
        assert "book" in small_bib.distinct_tags()
        assert "price" in small_bib.distinct_tags()


class TestDeepEqual:
    def test_equal_subtrees(self, paper_bib):
        authors = paper_bib.elements_by_tag("author")
        assert deep_equal(authors[0], authors[1])

    def test_unequal_subtrees(self, small_bib):
        authors = small_bib.elements_by_tag("author")
        assert not deep_equal(authors[0], authors[1])

    def test_empty_sequences_deep_equal(self):
        assert deep_equal(None, None)
        assert deep_equal_sequences([], [])

    def test_node_vs_empty(self, small_bib):
        author = small_bib.elements_by_tag("author")[0]
        assert not deep_equal(author, None)
        assert not deep_equal_sequences([author], [])

    def test_attribute_mismatch(self):
        a = parse('<x a="1"/>').root
        b = parse('<x a="2"/>').root
        assert not deep_equal(a, b)

    def test_whitespace_only_text_ignored(self):
        a = parse("<x><y>v</y></x>").root
        b = parse("<x>\n  <y>v</y>\n</x>").root
        assert deep_equal(a, b)


class TestDocumentBuilder:
    def test_manual_build_round_trips(self):
        builder = DocumentBuilder()
        builder.start_element("r")
        builder.element("x", "1", {"k": "v"})
        builder.element("y")
        builder.end_element()
        doc = builder.finish()
        assert serialize(doc.root) == '<r><x k="v">1</x><y/></r>'

    def test_unbalanced_build_rejected(self):
        builder = DocumentBuilder()
        builder.start_element("r")
        with pytest.raises(ValueError):
            builder.finish()

    def test_end_without_start_rejected(self):
        builder = DocumentBuilder()
        with pytest.raises(ValueError):
            builder.end_element()

    def test_second_root_rejected(self):
        builder = DocumentBuilder()
        builder.element("a")
        with pytest.raises(ValueError):
            builder.start_element("b")

    def test_text_under_document_rejected(self):
        builder = DocumentBuilder()
        with pytest.raises(ValueError):
            builder.text("boom")
