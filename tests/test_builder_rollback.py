"""Builder rollback: abandoned speculative chains leave no trace.

Regression tests for the BT006 class of latent violations the analyzer
surfaced: ``_where_endpoint`` and ``_try_prune_literal`` used to catch
``CompileError`` *after* partially extending the tree, leaving inert
optional leaves (and, worse, mandatory pruning stubs) behind.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_tree
from repro.engine import Engine, compile_query
from repro.pattern.blossom import MODE_OPTIONAL
from repro.pattern.build import build_blossom_tree
from repro.xquery.parser import parse_query

#: where-clauses whose endpoint chains fail mid-build (``parent``/
#: ``ancestor`` axes are outside the pattern subset, so translation
#: raises after the first step already added a vertex).
LEAKY_QUERIES = [
    "for $a in //book, $b in //book "
    "where $a/title/parent::x << $b return $a",
    "for $a in //book, $b in //book "
    "where deep-equal($a/author, $b/ancestor::x) return $a",
    'for $a in //book where $a/title/parent::x = "y" return $a',
    # Left endpoint builds fully, right endpoint fails: the pair must
    # be abandoned atomically.
    "for $a in //book, $b in //book "
    "where $a/title << $b/title/parent::x return $a",
]


class TestRollback:
    @pytest.mark.parametrize("query", LEAKY_QUERIES)
    def test_abandoned_chain_leaves_no_trace(self, query):
        compiled = compile_query(query)
        assert compiled.tree is not None, compiled.compile_error
        report = analyze_tree(compiled.tree)
        assert report.clean, report.format()
        # The untranslatable conjunct fell back to residual checking.
        assert compiled.tree.residual_where

    @pytest.mark.parametrize("query", LEAKY_QUERIES)
    def test_results_match_naive(self, query, small_bib):
        engine = Engine(small_bib)
        reference = engine.query(query, strategy="naive").serialize()
        assert engine.query(query, strategy="auto").serialize() == reference

    def test_checkpoint_restores_value_predicates(self):
        # A `self` step can attach a predicate to a pre-checkpoint
        # vertex before a later step fails; rollback must drop it.
        flwor = parse_query(
            'for $a in //book where $a/.[price]/parent::x = "y" return $a')
        tree = build_blossom_tree(flwor)
        book = tree.var_vertex["a"]
        assert not book.value_predicates
        assert not book.child_edges  # the [price] existential rolled back

    def test_checkpoint_roundtrip_is_identity(self):
        flwor = parse_query("for $a in //book return $a")
        tree = build_blossom_tree(flwor)
        mark = tree.checkpoint()
        extra = tree.new_vertex("spec")
        tree.add_edge(tree.var_vertex["a"], extra, "child", MODE_OPTIONAL)
        tree.rollback(mark)
        assert len(tree.vertices) == mark.n_vertices
        assert len(tree.tree_edges) == mark.n_tree_edges
        assert analyze_tree(tree).clean
