"""Prepared queries, the plan cache, parameter bindings, invalidation.

The correctness tests are differential: every cached or prepared
execution is compared byte-for-byte (``QueryResult.serialize``) against
a fresh compile on a fresh engine — and, where values are substituted,
against the naive oracle with the value inlined as a literal.
"""

import pytest

from repro import BindingError, Engine, UsageError, parse
from repro.engine.database import Database
from repro.engine.plancache import PlanCache
from repro.engine.prepared import PreparedQuery, normalize_bindings
from repro.obs.export import prometheus_text
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer
from tests.conftest import SMALL_BIB

PARAM_QUERY = ("for $b in //book where $b/price < $max "
               "return $b/title")


def fresh_result(xml: str, query: str, strategy: str = "auto") -> str:
    """Oracle: a brand-new engine (empty cache) compiling from scratch."""
    return Engine(parse(xml)).query(query, strategy=strategy).serialize()


class TestPlanCacheUnit:
    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refreshes a's recency
        cache.put("c", 3)                # evicts b, the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get("x") is None
        cache.put("x", 1)
        cache.get("x")
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1
        assert cache.invalidate("manual") == 1
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 0

    def test_bad_capacity(self):
        with pytest.raises(UsageError):
            PlanCache(capacity=0)


class TestTransparentCache:
    def test_second_query_hits_and_matches_fresh_compile(self):
        engine = Engine(parse(SMALL_BIB))
        first = engine.query("//book[author]/title").serialize()
        assert engine.plan_cache.hits == 0
        second = engine.query("//book[author]/title").serialize()
        assert engine.plan_cache.hits == 1
        assert first == second == fresh_result(SMALL_BIB,
                                               "//book[author]/title")

    def test_whitespace_normalization_shares_plans(self):
        engine = Engine(parse(SMALL_BIB))
        engine.query("for $b in //book return $b/title")
        engine.query("for $b in //book\n   return   $b/title")
        assert engine.plan_cache.hits == 1

    def test_distinct_strategies_do_not_share_plans(self):
        engine = Engine(parse(SMALL_BIB))
        engine.query("//book", strategy="pipelined")
        engine.query("//book", strategy="stack")
        assert engine.plan_cache.hits == 0
        assert len(engine.plan_cache) == 2

    def test_span_attribute_records_hit_and_miss(self):
        engine = Engine(parse(SMALL_BIB))
        engine.query("//book", trace=True)
        assert engine.last_trace.root.attrs["plan-cache"] == "miss"
        engine.query("//book", trace=True)
        assert engine.last_trace.root.attrs["plan-cache"] == "hit"

    def test_preparsed_expressions_bypass_the_cache(self):
        from repro.xquery.parser import parse_query

        engine = Engine(parse(SMALL_BIB))
        expr = parse_query("//book/title")
        engine.query(expr, trace=True)
        assert engine.last_trace.root.attrs["plan-cache"] == "bypass"
        assert len(engine.plan_cache) == 0

    def test_every_strategy_agrees_warm_and_cold(self):
        for strategy in ("auto", "pipelined", "stack", "bnlj", "naive",
                         "xhive", "twigstack", "cost"):
            engine = Engine(parse(SMALL_BIB))
            cold = engine.query("//book//last", strategy=strategy).serialize()
            warm = engine.query("//book//last", strategy=strategy).serialize()
            assert cold == warm == fresh_result(SMALL_BIB, "//book//last",
                                                strategy)


class TestInvalidation:
    def test_update_never_serves_stale_results(self):
        db = Database.from_xml(SMALL_BIB)
        query = "//book/title"
        db.query(query)                   # plan now cached
        db.updater().insert_subtree(
            db.doc.root, parse("<book><title>Fresh</title></book>").root)
        after = db.query(query).serialize()
        # Differential: identical to a from-scratch engine over the
        # mutated document, and to the naive oracle.
        from repro.xmlkit import serialize

        fresh = fresh_result(serialize(db.doc.root), query)
        naive = db.query(query, strategy="naive").serialize()
        assert after == fresh == naive
        assert "Fresh" in after

    def test_update_invalidates_cached_plans(self):
        db = Database.from_xml(SMALL_BIB)
        db.query("//book")
        assert len(db.engine.plan_cache) == 1
        db.updater().delete_subtree(db.doc.elements_by_tag("book")[0])
        assert len(db.engine.plan_cache) == 0
        assert db.engine.plan_cache.invalidations == 1

    def test_fingerprint_keys_out_stale_plans_without_listener(self):
        # Even a mutation the engine was never told about cannot serve
        # a plan keyed under the old statistics once stats refresh.
        engine = Engine(parse(SMALL_BIB))
        engine.query("//book")
        engine.notify_update()
        engine.query("//book", trace=True)
        assert engine.last_trace.root.attrs["plan-cache"] == "miss"

    def test_open_starts_with_an_empty_cache(self, tmp_path):
        db = Database.from_xml(SMALL_BIB)
        db.query("//book")
        assert len(db.engine.plan_cache) == 1
        db.save(tmp_path / "lib.btx")
        again = Database.open(tmp_path / "lib.btx")
        assert len(again.engine.plan_cache) == 0
        assert again.query("//book").serialize() == \
            db.query("//book").serialize()


class TestPreparedQueries:
    def test_prepare_execute_matches_query(self):
        engine = Engine(parse(SMALL_BIB))
        prepared = engine.prepare("//book[author]/title")
        assert isinstance(prepared, PreparedQuery)
        assert prepared.parameters == frozenset()
        assert prepared.execute().serialize() == \
            fresh_result(SMALL_BIB, "//book[author]/title")

    def test_bindings_byte_identical_to_fresh_compiles(self):
        engine = Engine(parse(SMALL_BIB))
        prepared = engine.prepare(PARAM_QUERY)
        assert prepared.parameters == {"max"}
        for threshold in (30.0, 40.0, 66.0, 10.0):
            got = prepared.execute(params={"max": threshold}).serialize()
            inlined = PARAM_QUERY.replace("$max", str(threshold))
            assert got == fresh_result(SMALL_BIB, inlined)
            assert got == fresh_result(SMALL_BIB, inlined, "naive")

    def test_executions_do_not_recompile(self):
        engine = Engine(parse(SMALL_BIB))
        prepared = engine.prepare(PARAM_QUERY)
        misses_after_prepare = engine.plan_cache.misses
        tracer = Tracer()
        prepared.execute(params={"max": 40.0}, tracer=tracer)
        trace = engine.last_trace
        assert trace.root.attrs["plan-cache"] == "prepared"
        assert trace.find("compile") is None        # no re-parse/re-build
        assert engine.plan_cache.misses == misses_after_prepare

    def test_string_parameter(self):
        engine = Engine(parse(SMALL_BIB))
        prepared = engine.prepare(
            "for $b in //book where $b/author/last = $name return $b/title")
        got = prepared.execute(params={"name": "Stevens"}).serialize()
        assert got == fresh_result(
            SMALL_BIB,
            "for $b in //book where $b/author/last = 'Stevens' "
            "return $b/title")

    def test_node_sequence_binding_roots_a_clause(self):
        # A clause rooted at an external parameter has no pattern-tree
        # anchor; auto falls back to the navigational evaluator, which
        # reads the bound node sequence directly.
        doc = parse(SMALL_BIB)
        engine = Engine(doc)
        prepared = engine.prepare("for $t in $books/title return $t")
        books = doc.elements_by_tag("book")[:2]
        got = prepared.execute(params={"books": books}).serialize()
        assert "TCP/IP Illustrated" in got and "Data on the Web" in got
        assert "Economics" not in got

    def test_missing_binding(self):
        engine = Engine(parse(SMALL_BIB))
        prepared = engine.prepare(PARAM_QUERY)
        with pytest.raises(BindingError, match=r"\$max"):
            prepared.execute()

    def test_unknown_binding(self):
        engine = Engine(parse(SMALL_BIB))
        prepared = engine.prepare("//book/title")
        with pytest.raises(BindingError, match="unknown parameter"):
            prepared.execute(params={"max": 1.0})

    def test_value_outside_the_model(self):
        with pytest.raises(BindingError, match="value model"):
            normalize_bindings(frozenset({"x"}), {"x": {"a": 1}})
        with pytest.raises(BindingError, match="only contain nodes"):
            normalize_bindings(frozenset({"x"}), {"x": ["not-a-node"]})

    def test_plain_query_requires_bindings_for_parameters(self):
        engine = Engine(parse(SMALL_BIB))
        with pytest.raises(BindingError):
            engine.query(PARAM_QUERY)

    def test_prepared_replans_after_update(self):
        db = Database.from_xml(SMALL_BIB)
        prepared = db.prepare("//book/title")
        before = prepared.execute().serialize()
        db.updater().insert_subtree(
            db.doc.root, parse("<book><title>Fresh</title></book>").root)
        after = prepared.execute().serialize()
        assert "Fresh" in after and "Fresh" not in before
        from repro.xmlkit import serialize

        assert after == fresh_result(serialize(db.doc.root), "//book/title")

    def test_database_facade_mirrors_engine(self):
        db = Database.from_xml(SMALL_BIB)
        prepared = db.prepare(PARAM_QUERY, strategy="auto")
        got = prepared.execute(params={"max": 40.0}).serialize()
        assert got == fresh_result(SMALL_BIB,
                                   PARAM_QUERY.replace("$max", "40.0"))
        assert "strategy:" in db.explain("//book")

    def test_repr_and_explain(self):
        engine = Engine(parse(SMALL_BIB))
        prepared = engine.prepare(PARAM_QUERY)
        assert "$max" in repr(prepared)
        assert "strategy:" in prepared.explain()
        assert prepared.plan_description


class TestExposition:
    def test_plan_cache_counters_in_prometheus_text(self):
        engine = Engine(parse(SMALL_BIB))
        engine.query("//book")
        engine.query("//book")
        text = prometheus_text(REGISTRY)
        for name in ("repro_plan_cache_hits_total",
                     "repro_plan_cache_misses_total",
                     "repro_plan_cache_evictions_total",
                     "repro_plan_cache_invalidations_total"):
            assert name in text
