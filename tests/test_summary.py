"""The DataGuide-style structural summary (repro.xmlkit.summary)."""

from repro.xmlkit.parser import parse
from repro.xmlkit.summary import (DOC_LABEL, StructuralSummary,
                                  build_summary)

DOC = """\
<bib>
 <book year="1994">
  <title>TCP</title>
  <author><last>Stevens</last></author>
 </book>
 <book year="2000">
  <title>Web</title>
  <author><last>Buneman</last></author>
  <author><last>Abiteboul</last></author>
 </book>
 <item id="7"><isbn>x</isbn></item>
</bib>
"""


def summary():
    return build_summary(parse(DOC))


class TestConstruction:
    def test_distinct_paths(self):
        s = summary()
        assert set(s.paths) == {
            ("bib",),
            ("bib", "book"),
            ("bib", "book", "title"),
            ("bib", "book", "author"),
            ("bib", "book", "author", "last"),
            ("bib", "item"),
            ("bib", "item", "isbn"),
        }
        assert not s.truncated

    def test_counts_aggregate_over_occurrences(self):
        s = summary()
        assert s.paths[("bib", "book")].count == 2
        assert s.paths[("bib", "book", "author")].count == 3
        assert s.label_counts["author"] == 3
        assert s.label_counts["bib"] == 1

    def test_child_sets(self):
        s = summary()
        assert s.paths[("bib",)].children == {"book", "item"}
        assert s.paths[("bib", "book")].children == {"title", "author"}

    def test_attribute_presence(self):
        s = summary()
        assert s.paths[("bib", "book")].attributes == {"year"}
        assert s.paths[("bib", "item")].attributes == {"id"}
        assert s.label_attributes["book"] == {"year"}
        assert s.label_attributes["title"] == set()

    def test_parent_and_ancestor_maps(self):
        s = summary()
        assert s.parent_labels["bib"] == {DOC_LABEL}
        assert s.parent_labels["last"] == {"author"}
        assert s.ancestor_labels["last"] == {"bib", "book", "author"}

    def test_root_labels(self):
        assert summary().root_labels() == {"bib"}

    def test_recursive_document(self):
        s = build_summary(parse("<a><a><a><b/></a></a></a>"))
        assert ("a", "a", "a") in s.paths
        assert s.label_counts["a"] == 3
        assert "a" in s.ancestor_labels["a"]


class TestConservativeHelpers:
    def test_label_occurs(self):
        s = summary()
        assert s.label_occurs("book")
        assert not s.label_occurs("zzz")
        # Wildcards and pseudo-labels are always satisfiable.
        assert s.label_occurs("*")
        assert s.label_occurs("#root")

    def test_occurs_under(self):
        s = summary()
        assert s.occurs_under("last", "book")
        assert not s.occurs_under("isbn", "book")
        assert s.occurs_under("anything", "*")

    def test_child_occurs(self):
        s = summary()
        assert s.child_occurs("author", "last")
        assert not s.child_occurs("book", "last")
        assert s.child_occurs(DOC_LABEL, "bib")
        assert not s.child_occurs(DOC_LABEL, "book")

    def test_attr_occurs(self):
        s = summary()
        assert s.attr_occurs("book", "year")
        assert not s.attr_occurs("book", "id")
        assert s.attr_occurs_anywhere("id")
        assert not s.attr_occurs_anywhere("href")


class TestTruncation:
    def test_truncated_summary_answers_true_for_everything(self):
        s = build_summary(parse("<r><a/><b/><c/></r>"), max_paths=2)
        assert s.truncated
        assert s.label_occurs("zzz")
        assert s.occurs_under("zzz", "qqq")
        assert s.child_occurs("zzz", "qqq")
        assert s.attr_occurs("zzz", "href")
        assert s.attr_occurs_anywhere("href")

    def test_truncation_changes_fingerprint(self):
        doc = parse("<r><a/><b/><c/></r>")
        assert build_summary(doc).fingerprint() \
            != build_summary(doc, max_paths=2).fingerprint()


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert summary().fingerprint() == summary().fingerprint()

    def test_changes_with_structure(self):
        base = build_summary(parse("<r><a/></r>")).fingerprint()
        assert base != build_summary(parse("<r><b/></r>")).fingerprint()
        # Count changes matter too (the path set is identical).
        assert base != build_summary(parse("<r><a/><a/></r>")).fingerprint()

    def test_changes_with_attributes(self):
        assert build_summary(parse("<r><a/></r>")).fingerprint() \
            != build_summary(parse('<r><a x="1"/></r>')).fingerprint()

    def test_empty_summary(self):
        s = StructuralSummary(paths={})
        assert len(s) == 0
        assert not s.label_occurs("a")
        assert s.fingerprint()
