"""Property-based tests (hypothesis): random documents, random queries.

The central property: every evaluation strategy in the repository
agrees with the naive oracle on randomly generated documents and
queries.  Side properties cover parser round-trips, Theorem 1/2 order
preservation, and join-algorithm equivalence.
"""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Engine
from repro.errors import CompileError
from repro.pattern import build_from_path, decompose
from repro.physical import (
    NoKMatcher,
    bounded_nested_loop_join,
    caching_desc_join,
    left_projection,
    stack_desc_join,
)
from repro.xmlkit import parse, serialize
from repro.xmlkit.tree import DocumentBuilder
from repro.xpath import parse_xpath

TAGS = ["a", "b", "c", "d"]

# ----------------------------------------------------------------------
# Generators.
# ----------------------------------------------------------------------


@st.composite
def xml_documents(draw, max_depth=4, max_children=4):
    """A random small document over a 4-tag alphabet (recursion allowed)."""

    def subtree(depth):
        tag = draw(st.sampled_from(TAGS))
        if depth >= max_depth:
            return (tag, [], draw(st.booleans()))
        n_children = draw(st.integers(0, max_children - depth))
        children = [subtree(depth + 1) for _ in range(n_children)]
        return (tag, children, draw(st.booleans()))

    builder = DocumentBuilder()

    def emit(node):
        tag, children, with_text = node
        builder.start_element(tag)
        if with_text and not children:
            builder.text(draw(st.sampled_from(["x", "y", "1", "2"])))
        for child in children:
            emit(child)
        builder.end_element()

    emit(("r", [subtree(1) for _ in range(draw(st.integers(1, 4)))], False))
    return builder.finish()


@st.composite
def twig_paths(draw, max_steps=3):
    """A random //-flavoured path with optional branch predicates."""
    parts = []
    for _ in range(draw(st.integers(1, max_steps))):
        sep = draw(st.sampled_from(["/", "//"]))
        tag = draw(st.sampled_from(TAGS))
        predicates = ""
        if draw(st.integers(0, 3)) == 0:
            predicates = f"[{draw(st.sampled_from(TAGS))}]"
        elif draw(st.integers(0, 4)) == 0:
            predicates = f"[//{draw(st.sampled_from(TAGS))}]"
        parts.append(f"{sep}{tag}{predicates}")
    path = "".join(parts)
    return path if path.startswith("/") else "//" + path


COMMON_SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Differential properties.
# ----------------------------------------------------------------------


class TestStrategyAgreement:
    @COMMON_SETTINGS
    @given(doc=xml_documents(), path=twig_paths())
    def test_all_strategies_agree_on_paths(self, doc, path):
        engine = Engine(doc)
        reference = engine.query(path, strategy="naive")
        ref_ids = [n.nid for n in reference.nodes()]
        for strategy in ("stack", "caching", "bnlj", "xhive", "auto"):
            got = engine.query(path, strategy=strategy)
            assert [n.nid for n in got.nodes()] == ref_ids, strategy
        try:
            got = engine.query(path, strategy="twigstack")
        except CompileError:
            return
        assert [n.nid for n in got.nodes()] == ref_ids, "twigstack"

    @COMMON_SETTINGS
    @given(doc=xml_documents(), path=twig_paths(max_steps=2),
           inner=st.sampled_from(TAGS))
    def test_flwor_agrees_with_oracle(self, doc, path, inner):
        engine = Engine(doc)
        query = (f"for $x in {path}, $y in $x//{inner} "
                 f"return <p>{{ $y }}</p>")
        reference = engine.query(query, strategy="naive").serialize()
        for strategy in ("stack", "caching", "bnlj"):
            assert engine.query(query, strategy=strategy).serialize() == \
                reference, strategy

    @COMMON_SETTINGS
    @given(doc=xml_documents(), path=twig_paths(max_steps=2))
    def test_let_count_agrees(self, doc, path):
        engine = Engine(doc)
        query = f"for $x in {path} let $k := $x/a return <n>{{ count($k) }}</n>"
        reference = engine.query(query, strategy="naive").serialize()
        assert engine.query(query, strategy="stack").serialize() == reference


class TestParserRoundTrip:
    @COMMON_SETTINGS
    @given(doc=xml_documents())
    def test_serialize_parse_identity(self, doc):
        text = serialize(doc.root)
        again = parse(text)
        assert serialize(again.root) == text
        assert len(again.nodes) == len(doc.nodes)

    @COMMON_SETTINGS
    @given(path=twig_paths())
    def test_path_str_reparses(self, path):
        parsed = parse_xpath(path)
        assert str(parse_xpath(str(parsed))) == str(parsed)


class TestStructuralInvariants:
    @COMMON_SETTINGS
    @given(doc=xml_documents())
    def test_region_labels_encode_ancestry(self, doc):
        # For every pair: region containment iff tree ancestry.
        nodes = doc.nodes[:30]
        for u in nodes:
            for v in nodes:
                contained = u.start < v.start and v.end < u.end
                assert contained == (u is not v and u.is_ancestor_of(v))

    @COMMON_SETTINGS
    @given(doc=xml_documents(), tag=st.sampled_from(TAGS))
    def test_theorem1_projection_order(self, doc, tag):
        """Theorem 1: NoK scan projections are document-ordered.

        The paper's physical layout keeps one *global* list per pattern
        node, which makes the concatenated projection document-ordered
        even when matches nest (recursive documents).  Our per-match
        layout guarantees the theorem directly only when the match
        roots do not nest; the join input path
        (:func:`~repro.physical.structural.left_projection`) restores
        the global order in all cases — both facts are asserted here.
        """
        tree = build_from_path(parse_xpath(f"//{tag}/a"))
        dec = decompose(tree)
        nok = next(n for n in dec.noks if n.root.name == tag)
        matches = NoKMatcher(nok, doc).matches()
        a_vertex = tree.var_vertex["#result"]
        roots_nest = any(m1.node.is_ancestor_of(m2.node)
                         for m1 in matches for m2 in matches)
        if not roots_nest:
            from repro.algebra import project_sequence
            nids = [n.nid for n in project_sequence(matches, a_vertex)]
            assert nids == sorted(nids)
        # The join-facing projection is document-ordered unconditionally.
        fake_edge = type("E", (), {"parent": a_vertex})
        nids = [n.nid for n in left_projection(matches, fake_edge)]
        assert nids == sorted(nids)
        assert len(nids) == len(set(nids))

    @COMMON_SETTINGS
    @given(doc=xml_documents(), outer=st.sampled_from(TAGS),
           inner=st.sampled_from(TAGS))
    def test_join_algorithms_equivalent(self, doc, outer, inner):
        tree = build_from_path(parse_xpath(f"//{outer}//{inner}"))
        dec = decompose(tree)
        edge = next(e for e in dec.inter_edges if e.parent.name == outer)
        left_nok = dec.noks[edge.nok_from]
        right_nok = dec.noks[edge.nok_to]
        left = NoKMatcher(left_nok, doc).matches()
        right = NoKMatcher(right_nok, doc).matches()
        projection = left_projection(left, edge)

        def norm(result):
            return {k: sorted(e.node.nid for e in v)
                    for k, v in result.adjacency.items()}

        cached = norm(caching_desc_join(projection, right, edge))
        stacked = norm(stack_desc_join(projection, right, edge))
        bounded = norm(bounded_nested_loop_join(projection, right_nok, doc, edge))
        assert cached == stacked == bounded
