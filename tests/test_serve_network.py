"""The network serving front end: wire protocol, error mapping,
adaptive admission, robustness, and the differential bit-identity
suite (network client vs in-process service on the same snapshot)."""

import socket
import struct
import time

import pytest

import repro
from repro.errors import (
    WIRE_CODES,
    BindingError,
    ProtocolError,
    QuerySyntaxError,
    QueryTimeoutError,
    ReproError,
    ServiceOverloadedError,
    UsageError,
    error_for_code,
    wire_code,
)
from repro.serve import client as client_mod
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameReader,
    decode_frame,
    decode_item,
    encode_frame,
    read_frame,
)
from repro.serve.server import Server, listen
from repro.serve.service import QueryService
from repro.serve.throttle import AdmissionController

LIBRARY = """
<library>
  <shelf genre="systems">
    <book id="b1"><author>Gray</author><title>Transaction</title>
      <price>45</price></book>
    <book id="b2"><author>Codd</author><title>Relational</title>
      <price>30</price></book>
  </shelf>
  <shelf genre="theory">
    <book id="b3"><title>Automata</title><price>55</price></book>
  </shelf>
</library>
"""


@pytest.fixture
def served():
    """A service + server + connected client over an ephemeral port."""
    with repro.connect(LIBRARY) as db:
        server = db.listen()
        with client_mod.connect(*server.address) as cl:
            yield db, server, cl


def _raw_connection(server):
    """A raw socket to the server, hello frame already consumed."""
    sock = socket.create_connection(server.address, timeout=5.0)
    stream = sock.makefile("rwb")
    hello = read_frame(stream)
    assert hello["type"] == "hello"
    return sock, stream


# ----------------------------------------------------------------------
# Protocol unit tests.
# ----------------------------------------------------------------------


class TestFrames:
    def test_roundtrip(self):
        data = encode_frame({"type": "ping", "id": 7})
        length = struct.unpack(">I", data[:4])[0]
        assert len(data) == 4 + length
        frame = decode_frame(data[4:])
        assert frame == {"v": PROTOCOL_VERSION, "type": "ping", "id": 7}

    def test_wrong_version_is_refused(self):
        data = encode_frame({"v": 99, "type": "ping"})
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(data[4:])

    def test_non_object_is_refused(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1,2,3]")

    def test_garbage_is_refused(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_frame(b"\xff\x00 not json")

    def test_missing_type_is_refused(self):
        with pytest.raises(ProtocolError, match="type"):
            decode_frame(b'{"v": 1}')

    def test_reader_reassembles_partial_feeds(self):
        data = encode_frame({"type": "ping"}) + encode_frame({"type": "pong"})
        reader = FrameReader()
        frames = []
        for i in range(0, len(data), 3):     # drip 3 bytes at a time
            frames.extend(reader.feed(data[i:i + 3]))
        assert [f["type"] for f in frames] == ["ping", "pong"]

    def test_reader_refuses_oversized_length(self):
        reader = FrameReader(max_frame_bytes=16)
        with pytest.raises(ProtocolError, match="exceeds"):
            reader.feed(struct.pack(">I", 17) + b"x" * 17)

    def test_atom_items_widen_ints_to_float(self):
        assert decode_item({"kind": "atom", "value": 3}) == ("atom", 3.0)
        assert decode_item({"kind": "atom", "value": True}) == ("atom", True)

    def test_unknown_item_kind_is_refused(self):
        with pytest.raises(ProtocolError, match="kind"):
            decode_item({"kind": "blob", "value": "x"})


class TestWireCodes:
    def test_every_code_roundtrips_to_its_class(self):
        for code, cls in WIRE_CODES:
            error = error_for_code(code, "boom")
            assert isinstance(error, cls), code
            assert wire_code(error) == code

    def test_subclasses_map_before_bases(self):
        # QueryTimeoutError subclasses ExecutionError; the wire code
        # must preserve the most specific class.
        assert wire_code(QueryTimeoutError("t", timeout_ms=1)) == "TIMEOUT"

    def test_unknown_code_degrades_to_the_root(self):
        error = error_for_code("FROM_THE_FUTURE", "??")
        assert type(error) is ReproError

    def test_non_repro_errors_map_to_internal(self):
        assert wire_code(ValueError("x")) == "INTERNAL"


# ----------------------------------------------------------------------
# End-to-end over a real socket.
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_query_roundtrip(self, served):
        db, _server, cl = served
        result = cl.query("//book[author]/title")
        assert result.serialize() == \
            db.query("//book[author]/title").serialize()
        assert result.snapshot_id >= 0
        assert len(result) == 2

    def test_params_flow_through(self, served):
        _db, _server, cl = served
        result = cl.query("//book[author = $who]/title",
                          params={"who": "Gray"})
        assert result.string_values() == ["Transaction"]

    def test_errors_arrive_as_their_class(self, served):
        _db, _server, cl = served
        with pytest.raises(QuerySyntaxError):
            cl.query("//book[")
        # The connection survives an error frame.
        assert cl.ping()

    def test_binding_errors_cross_the_wire(self, served):
        _db, _server, cl = served
        with pytest.raises(BindingError, match="missing binding"):
            cl.query("//book[author = $who]/title")

    def test_stats_schema_and_server_section(self, served):
        _db, _server, cl = served
        cl.query("//book")
        stats = cl.stats()
        assert stats["schema"] == 1
        section = stats["server"]
        assert section["active_connections"] >= 1
        assert section["admission"]["window"] >= 1
        assert section["admission"]["admitted"] >= 1

    def test_prepare_execute(self, served):
        db, _server, cl = served
        plan = cl.prepare("for $b in //book where $b/price < $max "
                          "return $b/title")
        assert plan.parameters == {"max"}
        remote = plan.execute(params={"max": 40.0}).serialize()
        local = db.prepare("for $b in //book where $b/price < $max "
                           "return $b/title")
        assert remote == local.execute(params={"max": 40.0}).serialize()

    def test_unknown_prepared_handle(self, served):
        _db, _server, cl = served
        with pytest.raises(UsageError, match="prepared"):
            client_mod.RemotePrepared(cl, 999, "//x", []).execute()

    def test_pipelined_requests_demultiplex_by_id(self, served):
        _db, _server, cl = served
        # Interleave requests on one connection; responses carry ids.
        for _ in range(5):
            assert len(cl.query("//book")) == 3
            assert cl.ping()

    def test_module_level_listen_owns_its_service(self):
        server = listen(LIBRARY, port=0)
        try:
            with client_mod.connect(*server.address) as cl:
                assert len(cl.query("//book")) == 3
        finally:
            server.close()
        assert server.service.closed

    def test_database_listen_is_idempotent_while_running(self):
        with repro.connect(LIBRARY) as db:
            server = db.listen()
            assert db.listen() is server
            db.close()
            assert server.closed

    def test_front_door_exports(self):
        assert repro.listen is listen
        assert repro.Server is Server
        assert repro.Client is client_mod.Client


class TestDifferentialBitIdentity:
    """Network results must be byte-for-byte the in-process results."""

    QUERIES = [
        "//book",
        "//book[author]/title",
        "//shelf/@genre",
        "/library/shelf/book/price",
        "count(//book)",
        "for $b in //book where $b/price > 40 return $b/title",
        "//book[price > $p]/title",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_wire_equals_in_process(self, served, query):
        db, _server, cl = served
        params = {"p": 30.0} if "$p" in query else None
        service = db.serve()
        remote = cl.query(query, params=params)
        local = service.query(query, params=params)
        assert remote.serialize() == local.serialize()
        assert remote.snapshot_id == local.snapshot_id


# ----------------------------------------------------------------------
# Robustness: hostile bytes, vanishing peers, expiring deadlines.
# ----------------------------------------------------------------------


class TestRobustness:
    def test_malformed_frame_gets_error_then_close(self, served):
        _db, server, _cl = served
        sock, stream = _raw_connection(server)
        try:
            body = b"this is not json"
            stream.write(struct.pack(">I", len(body)) + body)
            stream.flush()
            reply = read_frame(stream)
            assert reply["type"] == "error"
            assert reply["code"] == "PROTOCOL"
            with pytest.raises(EOFError):
                read_frame(stream)       # server closed the connection
        finally:
            sock.close()

    def test_oversized_frame_is_refused_unread(self, served):
        _db, server, _cl = served
        sock, stream = _raw_connection(server)
        try:
            stream.write(struct.pack(">I", MAX_FRAME_BYTES + 1))
            stream.flush()
            reply = read_frame(stream)
            assert reply["type"] == "error"
            assert reply["code"] == "PROTOCOL"
            assert "exceeds" in reply["message"]
        finally:
            sock.close()

    def test_unknown_frame_type_keeps_the_connection(self, served):
        _db, server, _cl = served
        sock, stream = _raw_connection(server)
        try:
            stream.write(encode_frame({"type": "teleport", "id": 1}))
            stream.write(encode_frame({"type": "ping", "id": 2}))
            stream.flush()
            first = read_frame(stream)
            assert (first["type"], first["code"]) == ("error", "PROTOCOL")
            second = read_frame(stream)
            assert (second["type"], second["id"]) == ("pong", 2)
        finally:
            sock.close()

    def test_mid_stream_disconnect_leaves_server_healthy(self, served):
        _db, server, cl = served
        sock, stream = _raw_connection(server)
        stream.write(encode_frame({"type": "query", "id": 1,
                                   "text": "//book"}))
        stream.flush()
        header = read_frame(stream)
        assert header["type"] == "result_header"
        sock.close()                     # vanish mid result stream
        # The server keeps serving other connections.
        assert cl.ping()
        assert len(cl.query("//book")) == 3

    def test_deadline_expires_mid_serialization(self):
        service = QueryService(LIBRARY, workers=2)
        try:
            # One item per chunk and an artificial inter-chunk pause
            # guarantee the stream outlives the deadline.
            with Server(service, chunk_items=1,
                        chunk_delay_s=0.08) as server:
                with client_mod.connect(*server.address) as cl:
                    with pytest.raises(QueryTimeoutError):
                        cl.query("//book", timeout_ms=120)
                    # The connection survives a mid-stream abort.
                    assert cl.ping()
        finally:
            service.close()

    def test_server_close_is_idempotent_and_drains(self, served):
        _db, server, cl = served
        assert len(cl.query("//book")) == 3
        server.close()
        server.close()
        assert server.closed


# ----------------------------------------------------------------------
# The adaptive admission controller.
# ----------------------------------------------------------------------


class TestAdmissionController:
    def test_window_gates_admissions(self):
        ctl = AdmissionController(start_window=2)
        assert ctl.try_acquire() and ctl.try_acquire()
        assert not ctl.try_acquire()     # window full → shed
        ctl.release(1.0)
        assert ctl.try_acquire()
        assert ctl.stats()["rejected"] == 1

    def test_grows_toward_target_when_fast(self):
        ctl = AdmissionController(target_ms=50.0, start_window=2,
                                  adjust_every=4)
        for _ in range(12):
            assert ctl.try_acquire()
            ctl.release(5.0)             # p50 far below target
        assert ctl.window > 2

    def test_shrinks_when_slow(self):
        ctl = AdmissionController(target_ms=10.0, start_window=16,
                                  adjust_every=4)
        for _ in range(8):
            assert ctl.try_acquire()
            ctl.release(100.0)           # p50 far above target
        assert ctl.window < 16

    def test_growth_is_slow_start_then_linear(self):
        ctl = AdmissionController(target_ms=1000.0, start_window=2,
                                  adjust_every=2, max_window=64)
        ctl.try_acquire(); ctl.release(1.0)
        ctl.try_acquire(); ctl.release(1.0)
        assert ctl.window <= 4           # at most doubled per interval

    def test_backoff_on_overload_and_slow_start_recovery(self):
        ctl = AdmissionController(target_ms=50.0, start_window=16,
                                  adjust_every=4, backoff_interval_s=0.0)
        ctl.try_acquire()
        ctl.release(overloaded=True)
        assert ctl.window == 8           # multiplicative cut
        before = ctl.window
        # First interval after the cut saw the error: growth is refused.
        # The next all-clear interval climbs back in slow-start.
        for _ in range(8):
            ctl.try_acquire()
            ctl.release(1.0)
        assert before < ctl.window <= 16     # climbing back, bounded

    def test_timeout_counts_as_congestion(self):
        ctl = AdmissionController(start_window=8, backoff_interval_s=0.0)
        ctl.try_acquire()
        ctl.release(timed_out=True)
        assert ctl.window == 4
        assert ctl.stats()["backoffs"] == 1

    def test_no_growth_on_error_intervals(self):
        ctl = AdmissionController(target_ms=50.0, start_window=4,
                                  adjust_every=4,
                                  backoff_interval_s=3600.0)
        ctl.try_acquire()
        ctl.release(overloaded=True)     # first backoff (refractory arms)
        cut = ctl.window
        ctl.try_acquire()
        ctl.release(timed_out=True)      # inside refractory: no second cut
        assert ctl.window == cut
        for _ in range(4):               # fast samples, but interval saw
            ctl.try_acquire()            # errors → growth is refused
            ctl.release(1.0)
        assert ctl.window == cut

    def test_refractory_coalesces_backoff_bursts(self):
        ctl = AdmissionController(start_window=16,
                                  backoff_interval_s=3600.0)
        for _ in range(5):
            ctl.try_acquire()
            ctl.release(overloaded=True)
        assert ctl.stats()["backoffs"] == 1
        assert ctl.window == 8           # one cut, not five

    def test_bad_knobs_are_usage_errors(self):
        with pytest.raises(UsageError):
            AdmissionController(target_ms=0.0)
        with pytest.raises(UsageError):
            AdmissionController(start_window=0)
        with pytest.raises(UsageError):
            AdmissionController(backoff_factor=1.5)

    def test_stats_shape(self):
        ctl = AdmissionController()
        stats = ctl.stats()
        for key in ("window", "inflight", "target_ms", "observed_p50_ms",
                    "admitted", "rejected", "backoffs", "adjustments"):
            assert key in stats


class TestOverloadShedding:
    def test_window_full_sheds_with_overloaded_code(self):
        service = QueryService(LIBRARY, workers=2)
        try:
            # A window of 1 plus a stalled stream occupies the only
            # admission slot; the next query must be shed immediately.
            with Server(service, start_window=1, chunk_items=1,
                        chunk_delay_s=0.2) as server:
                slow_sock, slow_stream = _raw_connection(server)
                try:
                    slow_stream.write(encode_frame(
                        {"type": "query", "id": 1, "text": "//book"}))
                    slow_stream.flush()
                    header = read_frame(slow_stream)
                    assert header["type"] == "result_header"
                    with client_mod.connect(*server.address) as cl:
                        started = time.perf_counter()
                        with pytest.raises(ServiceOverloadedError):
                            cl.query("//book")
                        # Shed fast — no queueing behind the slow one.
                        assert time.perf_counter() - started < 0.15
                finally:
                    slow_sock.close()
        finally:
            service.close()
