"""Unit tests for the result-cache policy/storage split
(:mod:`repro.serve.cachepolicy`): byte accounting, LRU-by-bytes
eviction, TTL, the snapshot-invalidation audit, window semantics, the
``result_cache=`` spec grammar and the adaptive policy's budget moves.

The serving-layer integration (retire hooks, service stats threading)
is covered in ``test_serve_service.py``; everything here drives the
storage directly with a fake clock and fake results.
"""

import warnings

import pytest

from repro.engine._compat import absorb_result_cache
from repro.errors import UsageError
from repro.obs.statstore import StatsStore
from repro.serve.cachepolicy import (
    DEFAULT_RESULT_CACHE_BYTES,
    ENTRY_OVERHEAD_BYTES,
    AdaptiveCachePolicy,
    CachePolicy,
    ResultCacheStorage,
    resolve_result_cache,
)


class FakeResult:
    """Stands in for a QueryResult: only ``serialize()`` matters."""

    def __init__(self, payload: str) -> None:
        self.payload = payload

    def serialize(self) -> str:
        return self.payload


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def key(n: int, snapshot: int = 1, doc: str = "main") -> tuple:
    return (doc, snapshot, f"//q{n}", "auto", "serial")


def make_storage(max_bytes: int = 4096, **kwargs) -> ResultCacheStorage:
    kwargs.setdefault("clock", FakeClock())
    return ResultCacheStorage(max_bytes, **kwargs)


class TestByteAccounting:
    def test_entries_charged_serialized_size_plus_overhead(self):
        storage = make_storage()
        assert storage.put(key(1), FakeResult("x" * 100))
        assert storage.entry_bytes(key(1)) == 100 + ENTRY_OVERHEAD_BYTES
        assert storage.put(key(2), FakeResult(""))
        # Zero-byte payloads still pay the fixed overhead.
        assert storage.entry_bytes(key(2)) == ENTRY_OVERHEAD_BYTES
        assert storage.stats()["bytes"] == 100 + 2 * ENTRY_OVERHEAD_BYTES

    def test_caller_supplied_nbytes_wins(self):
        storage = make_storage()
        storage.put(key(1), FakeResult("x" * 100), nbytes=999)
        assert storage.entry_bytes(key(1)) == 999

    def test_replacing_a_key_releases_the_old_charge(self):
        storage = make_storage()
        storage.put(key(1), FakeResult("x" * 100))
        storage.put(key(1), FakeResult("y" * 10))
        assert len(storage) == 1
        assert storage.stats()["bytes"] == 10 + ENTRY_OVERHEAD_BYTES

    def test_multibyte_text_is_charged_in_utf8_bytes(self):
        storage = make_storage()
        storage.put(key(1), FakeResult("é" * 10))   # 2 bytes each
        assert storage.entry_bytes(key(1)) == 20 + ENTRY_OVERHEAD_BYTES


class TestEviction:
    def test_lru_by_bytes_evicts_oldest_first(self):
        storage = make_storage(max_bytes=3 * ENTRY_OVERHEAD_BYTES)
        for n in (1, 2, 3):
            assert storage.put(key(n), FakeResult(""))
        assert len(storage) == 3
        storage.put(key(4), FakeResult(""))               # over budget
        assert storage.get(key(1)) is None                # oldest left
        assert storage.get(key(4)) is not None
        assert storage.stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        storage = make_storage(max_bytes=2 * ENTRY_OVERHEAD_BYTES)
        storage.put(key(1), FakeResult(""))
        storage.put(key(2), FakeResult(""))
        storage.get(key(1))                               # 1 is now MRU
        storage.put(key(3), FakeResult(""))
        assert storage.get(key(1)) is not None
        assert storage.get(key(2)) is None

    def test_one_large_entry_evicts_many_small(self):
        storage = make_storage(max_bytes=2048)
        for n in range(4):
            storage.put(key(n), FakeResult("x" * 100))
        storage.put(key(9), FakeResult("x" * 1500))
        stats = storage.stats()
        assert stats["bytes"] <= stats["capacity_bytes"]
        assert storage.get(key(9)) is not None

    def test_max_entries_cap_still_applies(self):
        storage = make_storage(max_entries=2)
        for n in (1, 2, 3):
            storage.put(key(n), FakeResult(""))
        assert len(storage) == 2
        assert storage.get(key(1)) is None

    def test_entry_larger_than_budget_is_rejected(self):
        storage = make_storage(max_bytes=512)
        assert not storage.put(key(1), FakeResult("x" * 4096))
        assert len(storage) == 0
        assert storage.stats()["rejected"] == 1

    def test_disabled_storage_never_admits(self):
        storage = make_storage(max_bytes=0)
        assert not storage.enabled
        assert not storage.put(key(1), FakeResult("x"))
        assert storage.get(key(1)) is None


class TestTTL:
    def test_entries_expire_lazily_on_get(self):
        clock = FakeClock()
        storage = ResultCacheStorage(policy=CachePolicy(ttl_s=10.0),
                                     clock=clock)
        storage.put(key(1), FakeResult("x"))
        clock.now = 9.0
        assert storage.get(key(1)) is not None
        clock.now = 10.0
        assert storage.get(key(1)) is None                # TTL is [0, ttl)
        stats = storage.stats()
        assert stats["expirations"] == 1
        assert stats["size"] == 0 and stats["bytes"] == 0

    def test_eviction_purges_expired_before_lru(self):
        clock = FakeClock()
        storage = ResultCacheStorage(
            max_bytes=3 * ENTRY_OVERHEAD_BYTES,
            policy=CachePolicy(ttl_s=5.0), clock=clock)
        storage.put(key(1), FakeResult(""))
        clock.now = 6.0                                   # 1 is now stale
        storage.put(key(2), FakeResult(""))
        storage.put(key(3), FakeResult(""))
        storage.put(key(4), FakeResult(""))               # needs room
        stats = storage.stats()
        # The stale entry went as an *expiration*, sparing a live one.
        assert stats["expirations"] == 1
        assert stats["evictions"] == 0
        assert storage.get(key(2)) is not None

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        storage = ResultCacheStorage(clock=clock)
        storage.put(key(1), FakeResult("x"))
        clock.now = 1e9
        assert storage.get(key(1)) is not None


class TestAdmissionPolicy:
    def test_max_entry_bytes_bounds_admission(self):
        storage = make_storage(
            policy=CachePolicy(max_entry_bytes=ENTRY_OVERHEAD_BYTES + 10))
        assert storage.put(key(1), FakeResult("x" * 10))
        assert not storage.put(key(2), FakeResult("x" * 11))
        assert storage.stats()["rejected"] == 1

    def test_custom_should_cache_hook(self):
        class NeverAggregates(CachePolicy):
            def should_cache(self, key, result, nbytes):
                return "agg" not in key[2]

        storage = make_storage(policy=NeverAggregates())
        assert storage.put(("main", 1, "//q", "auto", "serial"),
                           FakeResult("x"))
        assert not storage.put(("main", 1, "//agg", "auto", "serial"),
                               FakeResult("x"))

    def test_policy_knob_validation(self):
        with pytest.raises(UsageError, match="ttl_s"):
            CachePolicy(ttl_s=0)
        with pytest.raises(UsageError, match="max_entry_bytes"):
            CachePolicy(max_entry_bytes=-1)


class TestSnapshotInvalidation:
    def test_indexed_drop_with_clean_audit(self):
        storage = make_storage()
        for n in range(3):
            storage.put(key(n, snapshot=1), FakeResult("x"))
        storage.put(key(9, snapshot=2), FakeResult("y"))
        dropped = storage.invalidate_snapshot("main", 1)
        assert dropped == 3
        stats = storage.stats()
        assert stats["size"] == 1                         # snapshot 2 stays
        assert stats["invalidated"] == 3
        assert stats["audit"]["snapshots_invalidated"] == 1
        assert stats["audit"]["survivors"] == 0
        assert storage.get(key(0, snapshot=1)) is None
        assert storage.get(key(9, snapshot=2)) is not None

    def test_invalidation_is_per_document(self):
        storage = make_storage()
        storage.put(key(1, doc="a"), FakeResult("x"))
        storage.put(key(1, doc="b"), FakeResult("x"))
        assert storage.invalidate_snapshot("a", 1) == 1
        assert storage.get(key(1, doc="b")) is not None

    def test_audit_catches_an_index_hole(self):
        """Sabotage the snapshot index the way the pre-split bug class
        would (an entry the index forgot): the audit's full scan must
        still drop it and count the survivor."""
        storage = make_storage()
        storage.put(key(1), FakeResult("x"))
        storage.put(key(2), FakeResult("y"))
        storage._by_snapshot[("main", 1)].discard(key(2))  # the "bug"
        dropped = storage.invalidate_snapshot("main", 1)
        assert dropped == 2                               # audit caught it
        stats = storage.stats()
        assert stats["audit"]["survivors"] == 1
        assert stats["size"] == 0 and stats["bytes"] == 0

    def test_unknown_snapshot_is_a_noop_but_still_audited(self):
        storage = make_storage()
        storage.put(key(1), FakeResult("x"))
        assert storage.invalidate_snapshot("main", 777) == 0
        stats = storage.stats()
        assert stats["audit"]["snapshots_invalidated"] == 1
        assert stats["audit"]["survivors"] == 0
        assert stats["size"] == 1


class TestWindowSemantics:
    def test_window_tracks_alongside_lifetime(self):
        storage = make_storage()
        storage.put(key(1), FakeResult("x"))
        storage.get(key(1))                               # hit
        storage.get(key(2))                               # miss
        stats = storage.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["window"]["hits"] == 1
        assert stats["window"]["misses"] == 1
        assert stats["window"]["hit_ratio"] == 0.5

    def test_resize_resets_window_not_lifetime(self):
        storage = make_storage()
        storage.put(key(1), FakeResult("x"))
        storage.get(key(1))
        storage.resize(max_bytes=8192)
        stats = storage.stats()
        assert stats["capacity_bytes"] == 8192
        assert stats["hits"] == 1                         # lifetime kept
        assert stats["window"]["lookups"] == 0            # window reset
        assert stats["window"]["hit_ratio"] is None

    def test_resize_down_evicts_to_the_new_budget(self):
        storage = make_storage()
        for n in range(4):
            storage.put(key(n), FakeResult("x" * 100))
        storage.resize(max_bytes=ENTRY_OVERHEAD_BYTES + 100)
        stats = storage.stats()
        assert stats["size"] == 1
        assert stats["bytes"] <= stats["capacity_bytes"]

    def test_clear_drops_entries_and_window_keeps_lifetime(self):
        storage = make_storage()
        storage.put(key(1), FakeResult("x"))
        storage.get(key(1))
        assert storage.clear() == 1
        stats = storage.stats()
        assert stats["size"] == 0 and stats["bytes"] == 0
        assert stats["hits"] == 1
        assert stats["window"]["lookups"] == 0

    def test_window_age_follows_the_clock(self):
        clock = FakeClock()
        storage = ResultCacheStorage(clock=clock)
        clock.now = 7.5
        assert storage.window_snapshot()["age_s"] == 7.5
        storage.reset_window()
        clock.now = 9.0
        assert storage.window_snapshot()["age_s"] == 1.5


class TestResolveSpec:
    def test_none_builds_the_default(self):
        storage = resolve_result_cache(None)
        assert storage.max_bytes == DEFAULT_RESULT_CACHE_BYTES
        assert storage.max_entries is None
        assert type(storage.policy) is CachePolicy
        assert storage.policy.ttl_s is None

    @pytest.mark.parametrize(
        "spec", [0, False, "off", "none", "disabled", "0", " OFF "])
    def test_disabling_spellings(self, spec):
        assert resolve_result_cache(spec) is None

    @pytest.mark.parametrize("spec, expected", [
        (65536, 65536),
        ("64kb", 64 * 1024),
        ("16mb", 16 * 1024 ** 2),
        ("1.5kb", 1536),
        ("2gb", 2 * 1024 ** 3),
        ("4096", 4096),
        ("512b", 512),
    ])
    def test_byte_budget_spellings(self, spec, expected):
        assert resolve_result_cache(spec).max_bytes == expected

    def test_mapping_knobs(self):
        storage = resolve_result_cache({
            "max_bytes": "1mb", "max_entries": 32,
            "ttl_s": 2.5, "max_entry_bytes": 1024})
        assert storage.max_bytes == 1024 ** 2
        assert storage.max_entries == 32
        assert storage.policy.ttl_s == 2.5
        assert storage.policy.max_entry_bytes == 1024

    def test_mapping_zeroes_disable(self):
        assert resolve_result_cache({"max_entries": 0}) is None
        assert resolve_result_cache({"max_bytes": 0}) is None

    def test_adaptive_knob(self):
        storage = resolve_result_cache({"adaptive": True, "ttl_s": 1.0})
        assert isinstance(storage.policy, AdaptiveCachePolicy)
        assert storage.policy.ttl_s == 1.0
        tuned = resolve_result_cache(
            {"adaptive": {"interval": 16, "grow_ratio": 0.5}})
        assert tuned.policy.interval == 16

    def test_policy_and_storage_specs(self):
        policy = CachePolicy(ttl_s=3.0)
        assert resolve_result_cache(policy).policy is policy
        storage = ResultCacheStorage(1024)
        assert resolve_result_cache(storage) is storage

    def test_unknown_knob_is_a_usage_error(self):
        with pytest.raises(UsageError, match="unknown result_cache"):
            resolve_result_cache({"size": 64})

    def test_bad_specs_are_usage_errors(self):
        with pytest.raises(UsageError, match="byte budget"):
            resolve_result_cache(-1)
        with pytest.raises(UsageError, match="cannot parse"):
            resolve_result_cache("sixty-four kb")
        with pytest.raises(UsageError, match="cannot interpret"):
            resolve_result_cache(3.14)


class TestAdaptivePolicy:
    @staticmethod
    def drive(storage, hits, misses):
        """Feed the window ``hits``/``misses`` lookups."""
        storage.put(key(0), FakeResult("x"))
        for _ in range(hits):
            assert storage.get(key(0)) is not None
        for n in range(misses):
            storage.get(("main", 1, f"//absent{n}", "auto", "serial"))

    def test_grows_when_hot_and_evicting(self):
        policy = AdaptiveCachePolicy(interval=8, min_bytes=1024)
        storage = make_storage(max_bytes=2048, policy=policy)
        self.drive(storage, hits=8, misses=0)
        storage.evictions += 1                            # byte pressure
        storage._window_evictions += 1
        assert policy.adapt(storage) == 4096
        assert policy.decisions["grown"] == 1

    def test_never_grows_without_evictions(self):
        policy = AdaptiveCachePolicy(interval=8, min_bytes=1024)
        storage = make_storage(max_bytes=2048, policy=policy)
        self.drive(storage, hits=8, misses=0)
        assert policy.adapt(storage) is None              # no pressure
        # The verdict consumed the window: a fresh measurement starts.
        assert storage.window_snapshot()["lookups"] == 0

    def test_shrinks_when_cold(self):
        policy = AdaptiveCachePolicy(interval=8, min_bytes=1024)
        storage = make_storage(max_bytes=4096, policy=policy)
        self.drive(storage, hits=0, misses=8)
        assert policy.adapt(storage) == 2048
        assert policy.decisions["shrunk"] == 1

    def test_clamped_at_min_bytes(self):
        policy = AdaptiveCachePolicy(interval=8, min_bytes=2048)
        storage = make_storage(max_bytes=2048, policy=policy)
        self.drive(storage, hits=0, misses=8)
        assert policy.adapt(storage) is None              # at the floor

    def test_interval_gates_decisions(self):
        policy = AdaptiveCachePolicy(interval=100)
        storage = make_storage(policy=policy)
        self.drive(storage, hits=0, misses=8)
        assert policy.adapt(storage) is None
        assert policy.decisions["shrunk"] == 0            # not enough data

    def test_entry_bound_follows_observed_p95(self):
        policy = AdaptiveCachePolicy(interval=4, entry_headroom=2.0)
        storage = make_storage(policy=policy)
        store = StatsStore()
        for _ in range(50):
            store.record_result_bytes(60_000)
        self.drive(storage, hits=2, misses=2)
        policy.adapt(storage, lambda: [store])
        assert policy.decisions["entry_bound"] == 1
        # p95 lands in the 64 KiB bucket; headroom doubles it.
        assert policy.max_entry_bytes is not None
        assert policy.max_entry_bytes >= 60_000

    def test_knob_validation(self):
        with pytest.raises(UsageError, match="min_bytes"):
            AdaptiveCachePolicy(min_bytes=0)
        with pytest.raises(UsageError, match="shrink_ratio"):
            AdaptiveCachePolicy(grow_ratio=0.2, shrink_ratio=0.5)
        with pytest.raises(UsageError, match="interval"):
            AdaptiveCachePolicy(interval=0)

    def test_describe_carries_the_decision_ledger(self):
        policy = AdaptiveCachePolicy()
        payload = policy.describe()
        assert payload["policy"] == "AdaptiveCachePolicy"
        assert payload["decisions"] == {
            "grown": 0, "shrunk": 0, "entry_bound": 0}


class TestResultCacheSizeShim:
    def test_maps_to_max_entries_with_a_warning(self):
        with pytest.warns(DeprecationWarning, match="result_cache_size"):
            spec = absorb_result_cache("QueryService", None, 64)
        assert spec == {"max_entries": 64}

    def test_zero_still_disables(self):
        with pytest.warns(DeprecationWarning):
            spec = absorb_result_cache("QueryService", None, 0)
        assert resolve_result_cache(spec) is None

    def test_both_knobs_is_an_error(self):
        with pytest.raises(UsageError, match="both"):
            absorb_result_cache("QueryService", "16mb", 64)

    def test_absent_knob_passes_through_untouched(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert absorb_result_cache("QueryService", "16mb", None) \
                == "16mb"
