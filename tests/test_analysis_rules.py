"""Corruption fixtures for the plan invariant analyzer.

Each test takes a clean compiled artifact bundle, breaks exactly one
invariant the way a real bug would (a builder that leaks a partial
chain, a cache that replays stale Dewey IDs after an update, a flipped
cut flag), and asserts that the analyzer fires the *exact* rule ID the
catalogue promises for that corruption.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    analyze_artifacts,
    analyze_plan,
    analyze_tree,
    verify_artifacts,
    verify_tree,
)
from repro.analysis.analyzer import VERIFY_RUNS
from repro.analysis.passes import ast_pass, plan_pass
from repro.analysis.report import AnalysisReport
from repro.analysis.rules import RULES, Severity
from repro.engine.compiler import compile_query
from repro.engine.optimizer import PlanChoice
from repro.engine.plancache import PlanCache
from repro.engine.prepared import CachedPlan
from repro.errors import PlanInvariantError, UsageError
from repro.pattern.artifact import PatternArtifacts, prepare_artifacts
from repro.pattern.blossom import MODE_OPTIONAL
from repro.xquery.parser import parse_query

TWIG = "for $a in //book return $a"
CHAIN = "for $a in //book/title return $a"
CROSS = "for $a in //book, $b in //book where $a << $b return $a"


def artifacts_for(text: str) -> PatternArtifacts:
    compiled = compile_query(text)
    assert compiled.tree is not None, compiled.compile_error
    return prepare_artifacts(compiled.tree)


class TestAstRules:
    def test_ast001_unbound_variable(self):
        flwor = parse_query("for $a in //book return $b")
        report = AnalysisReport()
        ast_pass(flwor, report, external=frozenset())
        assert report.rule_ids() == ["AST001"]
        assert "$b" in report.findings[0].message

    def test_ast001_suppressed_by_external_declaration(self):
        flwor = parse_query("for $a in //book return $b")
        report = AnalysisReport()
        ast_pass(flwor, report, external=frozenset({"b"}))
        assert report.clean

    def test_ast002_duplicate_binding(self):
        flwor = parse_query("for $a in //book, $a in //title return $a")
        report = AnalysisReport()
        ast_pass(flwor, report)
        assert "AST002" in report.rule_ids()


class TestBlossomRules:
    def test_bt001_unbound_blossom(self):
        tree = artifacts_for(TWIG).tree
        # The tree maps $a to a vertex that no longer lists it — the
        # bijection is broken (an "unbound blossom").
        tree.var_vertex["a"].variables.remove("a")
        report = analyze_tree(tree)
        assert report.rule_ids() == ["BT001"]

    def test_bt001_blossom_not_returning(self):
        tree = artifacts_for(TWIG).tree
        tree.var_vertex["a"].returning = False
        report = analyze_tree(tree)
        assert "BT001" in report.rule_ids()

    def test_bt002_illegal_mode_on_cut_edge(self):
        artifacts = artifacts_for(TWIG)
        edge = next(e for e in artifacts.tree.tree_edges
                    if getattr(e, "cut", False))
        edge.mode = "x"
        report = analyze_artifacts(artifacts)
        assert "BT002" in report.rule_ids()

    def test_bt002_illegal_axis(self):
        tree = artifacts_for(TWIG).tree
        tree.tree_edges[0].axis = "preceding"
        report = analyze_tree(tree)
        assert "BT002" in report.rule_ids()

    def test_bt003_orphan_vertex(self):
        tree = artifacts_for(TWIG).tree
        tree.new_vertex("orphan")
        report = analyze_tree(tree)
        assert "BT003" in report.rule_ids()

    def test_bt003_parent_child_disagreement(self):
        tree = artifacts_for(CHAIN).tree
        # The child stops pointing back at its registered parent edge.
        tree.tree_edges[-1].child.parent_edge = None
        report = analyze_tree(tree)
        assert "BT003" in report.rule_ids()

    def test_bt004_illegal_crossing_relation(self):
        tree = artifacts_for(CROSS).tree
        assert tree.crossing_edges, "fixture query must produce a crossing"
        tree.crossing_edges[0].relation = "~~"
        report = analyze_tree(tree)
        assert "BT004" in report.rule_ids()

    def test_bt005_returning_not_upward_closed(self):
        tree = artifacts_for(CHAIN).tree
        title = tree.var_vertex["a"]
        book = title.parent_edge.parent
        book.returning = False
        report = analyze_tree(tree)
        assert "BT005" in report.rule_ids()

    def test_bt006_inert_optional_leaf(self):
        tree = artifacts_for(TWIG).tree
        leaf = tree.new_vertex("dead")
        tree.add_edge(tree.var_vertex["a"], leaf, "child", MODE_OPTIONAL)
        report = analyze_tree(tree)
        assert report.rule_ids() == ["BT006"]


class TestDecompositionRules:
    def test_nk001_local_axis_edge_cut(self):
        artifacts = artifacts_for(CHAIN)
        local = next(e for e in artifacts.tree.tree_edges
                     if e.axis == "child")
        local.cut = True
        report = analyze_artifacts(artifacts)
        assert "NK001" in report.rule_ids()

    def test_nk001_global_axis_edge_kept(self):
        artifacts = artifacts_for(TWIG)
        cut = next(e for e in artifacts.tree.tree_edges
                   if e.axis == "descendant")
        cut.cut = False
        report = analyze_artifacts(artifacts)
        assert "NK001" in report.rule_ids()

    def test_nk002_vertex_mapped_to_wrong_nok(self):
        artifacts = artifacts_for(CHAIN)
        title = artifacts.tree.var_vertex["a"]
        artifacts.decomposition.nok_of_vertex[title.vid] = 99
        report = analyze_artifacts(artifacts)
        assert "NK002" in report.rule_ids()

    def test_nk003_inter_edge_wrong_source_nok(self):
        artifacts = artifacts_for(TWIG)
        artifacts.decomposition.inter_edges[0].nok_from = 7
        report = analyze_artifacts(artifacts)
        assert "NK003" in report.rule_ids()


class TestDeweyRules:
    def test_dw001_returning_vertex_without_id(self):
        artifacts = artifacts_for(TWIG)
        book = artifacts.tree.var_vertex["a"]
        ident = artifacts.dewey.of_vertex.pop(book.vid)
        del artifacts.dewey.vertex_of[ident]
        artifacts.dewey.returning_parent.pop(book.vid, None)
        report = analyze_artifacts(artifacts)
        assert "DW001" in report.rule_ids()

    def test_dw001_non_dense_sibling_ordinals(self):
        artifacts = artifacts_for(TWIG)
        book = artifacts.tree.var_vertex["a"]
        old = artifacts.dewey.of_vertex[book.vid]
        skewed = old[:-1] + (old[-1] + 5,)
        artifacts.dewey.of_vertex[book.vid] = skewed
        artifacts.dewey.vertex_of[skewed] = artifacts.dewey.vertex_of.pop(old)
        report = analyze_artifacts(artifacts)
        assert "DW001" in report.rule_ids()

    def test_dw002_stale_assignment_after_simulated_update(self):
        # A structural update invalidates plans; recompiling rebuilds the
        # tree.  Replaying the OLD Dewey assignment against the NEW tree
        # (the bug a broken cache would have) must be caught.
        old = artifacts_for(TWIG)
        new = artifacts_for(TWIG)
        stale = PatternArtifacts(tree=new.tree,
                                 decomposition=new.decomposition,
                                 dewey=old.dewey)
        report = analyze_artifacts(stale)
        assert "DW002" in report.rule_ids()


class TestPlanRules:
    def test_pl001_join_child_id_does_not_extend_parent(self):
        artifacts = artifacts_for(TWIG)
        inter = artifacts.decomposition.inter_edges[0]
        artifacts.dewey.of_vertex[inter.child.vid] = (9, 9, 9)
        report = AnalysisReport()
        plan_pass(artifacts.tree, artifacts.decomposition, artifacts.dewey,
                  report)
        assert report.rule_ids() == ["PL001"]

    def test_pl001_join_parent_without_id(self):
        artifacts = artifacts_for(TWIG)
        inter = artifacts.decomposition.inter_edges[0]
        del artifacts.dewey.of_vertex[inter.parent.vid]
        report = AnalysisReport()
        plan_pass(artifacts.tree, artifacts.decomposition, artifacts.dewey,
                  report)
        assert report.rule_ids() == ["PL001"]

    def test_pl002_twigstack_on_non_twig(self):
        artifacts = artifacts_for(CROSS)
        report = analyze_artifacts(artifacts, strategy="twigstack")
        assert "PL002" in report.rule_ids()

    def test_pl002_unknown_strategy(self):
        artifacts = artifacts_for(TWIG)
        report = analyze_artifacts(artifacts, strategy="warp")
        assert report.rule_ids() == ["PL002"]

    def test_pl002_pattern_strategy_without_artifacts(self):
        compiled = compile_query(TWIG)
        plan = CachedPlan(compiled, PlanChoice("pipelined", "test"),
                          None, "pipelined")
        report = analyze_plan(plan)
        assert "PL002" in report.rule_ids()

    def test_pl003_pipelined_on_recursive_document_warns(self):
        artifacts = artifacts_for(TWIG)
        report = analyze_artifacts(artifacts, strategy="pipelined",
                                   recursive_document=True)
        assert report.rule_ids() == ["PL003"]
        assert report.ok and not report.clean   # warnings never block

    def test_pl003_silent_on_non_recursive_document(self):
        artifacts = artifacts_for(TWIG)
        report = analyze_artifacts(artifacts, strategy="pipelined",
                                   recursive_document=False)
        assert report.clean

    def test_pl004_parallel_on_partition_unsafe_plan(self):
        # /bib/book keeps its all-child-axis chain inside the #root NoK
        # (matched navigationally, never by the sequential scan), so the
        # parallel strategy must be refused with exactly PL004.
        artifacts = artifacts_for("for $a in /bib/book return $a")
        report = analyze_artifacts(artifacts, strategy="parallel",
                                   recursive_document=False)
        assert report.rule_ids() == ["PL004"]
        assert not report.ok    # error severity: validate-on-compile blocks

    def test_pl004_silent_on_partition_safe_plan(self):
        # //book decomposes into a trivial #root anchor plus a scannable
        # book NoK — the coordinator matches the anchor once; clean.
        artifacts = artifacts_for(TWIG)
        report = analyze_artifacts(artifacts, strategy="parallel",
                                   recursive_document=False)
        assert report.clean

    def test_pl004_verify_gate_raises(self):
        artifacts = artifacts_for("for $a in /bib/book return $a")
        with pytest.raises(PlanInvariantError) as excinfo:
            verify_artifacts(artifacts, strategy="parallel",
                             recursive_document=False)
        assert "PL004" in excinfo.value.rule_ids


class TestEnforcementGates:
    def test_verify_artifacts_raises_with_rule_ids(self):
        artifacts = artifacts_for(TWIG)
        edge = next(e for e in artifacts.tree.tree_edges
                    if getattr(e, "cut", False))
        edge.mode = "x"
        with pytest.raises(PlanInvariantError) as excinfo:
            verify_artifacts(artifacts)
        assert "BT002" in excinfo.value.rule_ids
        assert "BT002" in str(excinfo.value)

    def test_verify_tree_accepts_clean_tree(self):
        tree = artifacts_for(TWIG).tree
        report = verify_tree(tree)
        assert report.clean

    def test_verify_counts_outcomes(self):
        before = VERIFY_RUNS.value(outcome="error")
        artifacts = artifacts_for(TWIG)
        artifacts.tree.new_vertex("orphan")
        with pytest.raises(PlanInvariantError):
            verify_artifacts(artifacts)
        assert VERIFY_RUNS.value(outcome="error") == before + 1

    def test_warnings_do_not_raise(self):
        artifacts = artifacts_for(TWIG)
        report = verify_artifacts(artifacts, strategy="pipelined",
                                  recursive_document=True)
        assert report.rule_ids() == ["PL003"]

    def test_plan_cache_refuses_unverified_plans(self):
        compiled = compile_query(TWIG)
        artifacts = prepare_artifacts(compiled.tree)
        plan = CachedPlan(compiled, PlanChoice("pipelined", "test"),
                          artifacts, "pipelined")
        cache = PlanCache(capacity=4)
        with pytest.raises(UsageError, match="invariant verification"):
            cache.put("k", plan)
        plan.verified = True
        cache.put("k", plan)
        assert cache.get("k") is plan


class TestCatalogue:
    def test_every_rule_has_stage_severity_and_remediation(self):
        stages = {"ast", "blossom", "decomposition", "dewey", "plan",
                  "serve", "query"}
        for rule in RULES.values():
            assert rule.stage in stages
            assert isinstance(rule.severity, Severity)
            assert rule.title and rule.description and rule.remediation

    def test_rule_ids_are_stable(self):
        # Published IDs must never disappear or change meaning.
        assert set(RULES) == {
            "AST001", "AST002",
            "BT001", "BT002", "BT003", "BT004", "BT005", "BT006",
            "NK001", "NK002", "NK003",
            "DW001", "DW002",
            "PL001", "PL002", "PL003", "PL004",
            "SV001",
            "QL001", "QL002", "QL003", "QL004", "QL005", "QL006",
        }

    def test_warning_rules(self):
        warnings = [r.rule_id for r in RULES.values()
                    if r.severity is Severity.WARNING]
        assert warnings == ["PL003", "QL005"]

    def test_finding_format_is_lint_style(self):
        tree = artifacts_for(TWIG).tree
        tree.new_vertex("orphan")
        report = analyze_tree(tree, source="q.xq")
        line = report.findings[0].format("q.xq")
        assert line.startswith("q.xq:BT003: error: [blossom:")
        assert "hint:" in line
