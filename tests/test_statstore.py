"""The runtime statistics store and the feedback loop on top of it.

Covers the tentpole surface end to end: :class:`StatsStore` recording
semantics, histogram quantiles (including the exposition lines), the
:class:`StrategyAdvisor` explore-then-commit sequence, the engine's
recording/feedback wiring, the BENCH_PR5 demotion regression
(``parallel`` measured slower than the serial scan must be demoted
within the first few executions), the ``Database.stats()`` /
``QueryService.stats()`` snapshots, and the ``python -m repro.obs``
CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.optimizer import (
    DEMOTE_MARGIN,
    MIN_FEEDBACK_SAMPLES,
    PlanChoice,
    StrategyAdvisor,
)
from repro.engine.plancache import normalize_query_text
from repro.engine.session import Engine
from repro.obs.export import prometheus_text
from repro.obs.metrics import Histogram, MetricsRegistry, bucket_quantile
from repro.obs.statstore import (
    STRATEGY_DEMOTIONS,
    WORK_COUNTERS,
    DemotionRecord,
    StatsStore,
)
from repro.xmlkit.parser import parse

FP = (0, "fp")


def make_flat_doc(n_items: int = 2500) -> str:
    """A non-recursive document big enough for the parallel upgrade."""
    items = "".join(f"<item><val>{i % 7}</val></item>" for i in range(n_items))
    return f"<root>{items}</root>"


# ----------------------------------------------------------------------
# StatsStore recording semantics.
# ----------------------------------------------------------------------

class TestStatsStore:
    def test_record_accumulates(self):
        store = StatsStore()
        store.record("q", "pipelined", FP, "serial", elapsed_ms=2.0,
                     counters={"nodes_scanned": 10, "comparisons": 3},
                     items=5, cache_status="miss")
        entry = store.record("q", "pipelined", FP, "serial", elapsed_ms=4.0,
                             counters={"nodes_scanned": 6}, items=5,
                             cache_status="hit")
        assert entry.executions == 2
        assert entry.errors == 0
        assert entry.successes == 2
        assert entry.mean_ms == pytest.approx(3.0)
        assert entry.min_ms == pytest.approx(2.0)
        assert entry.max_ms == pytest.approx(4.0)
        assert entry.items_total == 10
        assert entry.work["nodes_scanned"] == 16
        assert entry.work["comparisons"] == 3
        assert entry.cache_hits == 1          # "miss" does not count
        assert store.records == 2
        assert len(store) == 1

    def test_prepared_counts_as_cache_hit(self):
        store = StatsStore()
        entry = store.record("q", "pipelined", FP, "serial", elapsed_ms=1.0,
                             cache_status="prepared")
        assert entry.cache_hits == 1

    def test_error_runs_skip_selectivities(self):
        store = StatsStore()
        entry = store.record("q", "pipelined", FP, "serial", elapsed_ms=1.0,
                             nok_matches=[("book", 7)], error="DNFError")
        assert entry.errors == 1
        assert entry.last_error == "DNFError"
        assert entry.successes == 0
        assert entry.nok_matches == {}        # failed run: no selectivity
        entry = store.record("q", "pipelined", FP, "serial", elapsed_ms=1.0,
                             nok_matches=[("book", 7), ("book", 9)])
        assert entry.observed_cardinality("book") == pytest.approx(8.0)

    def test_keys_separate_strategy_and_executor(self):
        store = StatsStore()
        store.record("q", "pipelined", FP, "serial", elapsed_ms=1.0)
        store.record("q", "parallel", FP, "threads:4", elapsed_ms=2.0)
        store.record("q", "pipelined", FP, "threads:4", elapsed_ms=3.0)
        assert len(store) == 3
        assert store.get("q", "pipelined", FP, "serial").mean_ms == pytest.approx(1.0)
        arms = store.arms("q", FP, "threads:4")
        assert set(arms) == {"parallel", "pipelined"}

    def test_lru_eviction_bounds_the_store(self):
        store = StatsStore(max_plans=2)
        store.record("a", "s", FP, "serial", elapsed_ms=1.0)
        store.record("b", "s", FP, "serial", elapsed_ms=1.0)
        store.record("a", "s", FP, "serial", elapsed_ms=1.0)   # refresh a
        store.record("c", "s", FP, "serial", elapsed_ms=1.0)   # evicts b
        assert store.get("b", "s", FP, "serial") is None
        assert store.get("a", "s", FP, "serial") is not None
        assert store.get("c", "s", FP, "serial") is not None

    def test_observed_cardinalities_pool_across_strategies(self):
        store = StatsStore()
        store.record("q", "pipelined", FP, "serial", elapsed_ms=1.0,
                     nok_matches=[("book", 10)])
        store.record("q", "twigstack", FP, "serial", elapsed_ms=1.0,
                     nok_matches=[("book", 20)])
        store.record("q", "pipelined", ("other",), 1, elapsed_ms=1.0,
                     nok_matches=[("book", 999)])     # other version: excluded
        observed = store.observed_cardinalities(FP)
        assert observed == {"book": pytest.approx(15.0)}

    def test_top_queries_orders_by_total_time(self):
        store = StatsStore()
        store.record("cheap", "s", FP, "serial", elapsed_ms=1.0)
        for _ in range(3):
            store.record("hot", "s", FP, "serial", elapsed_ms=5.0)
        top = store.top_queries(1)
        assert len(top) == 1 and top[0]["query"] == "hot"
        assert top[0]["total_ms"] == pytest.approx(15.0)

    def test_strategy_table_wins_and_losses(self):
        store = StatsStore()
        for _ in range(2):
            store.record("q", "pipelined", FP, "serial", elapsed_ms=1.0)
            store.record("q", "twigstack", FP, "serial", elapsed_ms=9.0)
        store.record("solo", "stack", FP, "serial", elapsed_ms=1.0)  # uncontested
        rows = {row["strategy"]: row for row in store.strategy_table()}
        assert rows["pipelined"]["wins"] == 1
        assert rows["pipelined"]["losses"] == 0
        assert rows["twigstack"]["losses"] == 1
        assert rows["stack"]["wins"] == 0 and rows["stack"]["losses"] == 0
        assert rows["twigstack"]["p50_ms"] is not None

    def test_snapshot_shape_and_top_bound(self):
        store = StatsStore()
        for name in ("a", "b", "c"):
            store.record(name, "s", FP, "serial", elapsed_ms=1.0)
        snap = store.snapshot(top=2)
        assert snap["n_plans"] == 3
        assert snap["records"] == 3
        assert len(snap["plans"]) == 2
        assert {"plans", "n_plans", "records", "by_strategy", "demotions",
                "settled"} <= set(snap)
        json.dumps(snap)                      # JSON-able end to end

    def test_settle_and_demotion_ring(self):
        store = StatsStore(max_demotions=2)
        before = STRATEGY_DEMOTIONS.value(from_strategy="parallel",
                                          to_strategy="pipelined")
        for i in range(3):
            store.settle(f"q{i}", FP, "serial", "pipelined", DemotionRecord(
                query=f"q{i}", fingerprint="fp", executor="serial",
                from_strategy="parallel", to_strategy="pipelined",
                from_mean_ms=2.0, to_mean_ms=1.0, executions=4, reason="r"))
        assert store.settled_strategy("q0", FP, "serial") == "pipelined"
        assert len(store.demotions) == 2      # bounded ring
        assert store.demotions[-1].query == "q2"
        after = STRATEGY_DEMOTIONS.value(from_strategy="parallel",
                                         to_strategy="pipelined")
        assert after == before + 3

    def test_jsonl_round_trip(self, tmp_path):
        store = StatsStore()
        store.record("q", "pipelined", FP, "serial", elapsed_ms=1.0)
        store.settle("q", FP, "serial", "pipelined", DemotionRecord(
            query="q", fingerprint="fp", executor="serial",
            from_strategy="parallel", to_strategy="pipelined",
            from_mean_ms=2.0, to_mean_ms=1.0, executions=4, reason="r"))
        path = tmp_path / "stats.jsonl"
        assert store.export_jsonl(path) == 2
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines() if line]
        assert kinds == ["plan", "demotion"]

    def test_clear_resets_everything(self):
        store = StatsStore()
        store.record("q", "s", FP, "serial", elapsed_ms=1.0)
        store.settle("q", FP, "serial", "s")
        store.clear()
        assert len(store) == 0 and store.records == 0
        assert store.settled_strategy("q", FP, "serial") is None
        assert store.demotions == []


# ----------------------------------------------------------------------
# Histogram quantiles (satellite: edge cases + exposition).
# ----------------------------------------------------------------------

class TestHistogramQuantile:
    def test_empty_histogram_returns_none(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        assert hist.quantile(0.5) is None

    def test_out_of_range_raises(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_single_bucket_interpolates_from_zero(self):
        hist = Histogram("h", buckets=(10.0,))
        hist.observe(3.0)
        hist.observe(7.0)
        assert hist.quantile(0.5) == pytest.approx(5.0)   # rank 1 of 2

    def test_overflow_bucket_reports_last_finite_bound(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)                   # beyond every finite bucket
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_interpolation_inside_a_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.5):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(4.0)
        assert 0.0 <= hist.quantile(0.0) <= 1.0

    def test_bucket_quantile_degenerate_inputs(self):
        assert bucket_quantile((), [], 0, 0.5) is None
        # Empty leading bucket: the rank lands on its edge.
        assert bucket_quantile((1.0, 2.0), [0, 2], 2, 0.5) == pytest.approx(1.5)

    def test_prometheus_text_emits_quantile_lines(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_ms", "test", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        text = prometheus_text(registry)
        assert 't_ms_quantile{quantile="0.5"}' in text
        assert 't_ms_quantile{quantile="0.99"}' in text
        assert 't_ms_count 2' in text

    def test_empty_histogram_emits_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("t_ms", "test", buckets=(1.0,))
        assert "t_ms_quantile" not in prometheus_text(registry)


# ----------------------------------------------------------------------
# The advisor's explore-then-commit sequence (pure store-driven).
# ----------------------------------------------------------------------

class TestStrategyAdvisor:
    STATIC = PlanChoice("parallel", "static rules")

    def advise(self, store, text="q", executor="threads:4"):
        return StrategyAdvisor(store).advise(text, FP, executor,
                                             self.STATIC, "pipelined")

    def test_no_history_runs_the_static_choice(self):
        assert self.advise(StatsStore()).strategy == "parallel"

    def test_probes_alternative_after_static_is_measured(self):
        store = StatsStore()
        for _ in range(MIN_FEEDBACK_SAMPLES):
            store.record("q", "parallel", FP, "threads:4", elapsed_ms=5.0)
        choice = self.advise(store)
        assert choice.strategy == "pipelined"
        assert "probe" in choice.reason

    def test_settles_on_static_when_it_wins(self):
        store = StatsStore()
        for _ in range(MIN_FEEDBACK_SAMPLES):
            store.record("q", "parallel", FP, "threads:4", elapsed_ms=1.0)
            store.record("q", "pipelined", FP, "threads:4", elapsed_ms=5.0)
        choice = self.advise(store)
        assert choice.strategy == "parallel"
        assert store.settled_strategy("q", FP, "threads:4") == "parallel"
        assert store.demotions == []          # confirming is not a demotion

    def test_demotes_static_when_alternative_wins(self):
        store = StatsStore()
        for _ in range(MIN_FEEDBACK_SAMPLES):
            store.record("q", "parallel", FP, "threads:4", elapsed_ms=26.3)
            store.record("q", "pipelined", FP, "threads:4", elapsed_ms=25.3)
        choice = self.advise(store)
        assert choice.strategy == "pipelined"
        [demotion] = store.demotions
        assert demotion.from_strategy == "parallel"
        assert demotion.to_strategy == "pipelined"

    def test_demote_margin_is_hysteresis_not_a_coin_flip(self):
        store = StatsStore()
        for _ in range(MIN_FEEDBACK_SAMPLES):
            store.record("q", "parallel", FP, "threads:4", elapsed_ms=1.0)
            # faster, but within the margin: not worth flapping over
            store.record("q", "pipelined", FP, "threads:4",
                         elapsed_ms=1.0 / DEMOTE_MARGIN * 1.001)
        assert self.advise(store).strategy == "parallel"

    def test_settled_decision_holds_then_flips_on_degradation(self):
        store = StatsStore()
        for _ in range(MIN_FEEDBACK_SAMPLES):
            store.record("q", "parallel", FP, "threads:4", elapsed_ms=26.3)
            store.record("q", "pipelined", FP, "threads:4", elapsed_ms=25.3)
        assert self.advise(store).strategy == "pipelined"   # settles
        assert self.advise(store).strategy == "pipelined"   # holds
        # The settled arm degrades far past the re-promotion margin...
        for _ in range(20):
            store.record("q", "pipelined", FP, "threads:4", elapsed_ms=200.0)
        choice = self.advise(store)
        assert choice.strategy == "parallel"                # ...and flips
        assert "flip" in choice.reason

    def test_no_alternative_means_static(self):
        store = StatsStore()
        advisor = StrategyAdvisor(store)
        choice = advisor.advise("q", FP, "serial", PlanChoice("naive", "r"), None)
        assert choice.strategy == "naive"


# ----------------------------------------------------------------------
# Engine wiring: recording on every run, feedback on demand.
# ----------------------------------------------------------------------

class TestEngineRecording:
    def test_query_records_actuals_and_selectivities(self):
        engine = Engine(parse("<bib><book><title>t</title>"
                              "<author>a</author></book></bib>"))
        result = engine.query("//book[author]/title")
        key = (normalize_query_text("//book[author]/title"),
               engine._last_strategy, engine.stats_fingerprint(), "serial")
        entry = engine.stats_store.get(*key)
        assert entry is not None
        assert entry.executions == 1
        assert entry.items_total == len(result)
        assert entry.work["nodes_scanned"] > 0
        # the match phase reported per-NoK observed cardinalities
        assert entry.nok_matches
        assert engine.stats_store.observed_cardinalities(
            engine.stats_fingerprint())

    def test_record_stats_false_records_nothing(self):
        engine = Engine(parse("<a><b/></a>"), record_stats=False)
        engine.query("//b")
        assert len(engine.stats_store) == 0

    def test_failed_runs_record_the_error(self):
        from repro.errors import DNFError

        engine = Engine(parse("<a><b/><b/><b/></a>"))
        with pytest.raises(DNFError):
            engine.query("//b", work_budget=1)
        entries = [e for e in engine.stats_store.top_queries(10)
                   if e["query"] == "//b"]
        assert entries and entries[0]["errors"] == 1
        assert entries[0]["last_error"] == "DNFError"

    def test_feedback_probes_both_arms_and_settles(self):
        engine = Engine(parse(make_flat_doc(200)), feedback=True)
        engine.index.build()
        text = "//item/val"
        for _ in range(2 * MIN_FEEDBACK_SAMPLES + 2):
            engine.query(text)
        norm = normalize_query_text(text)
        fp = engine.stats_fingerprint()
        arms = engine.stats_store.arms(norm, fp, "serial")
        assert len(arms) == 2                 # static + probed alternative
        assert engine.stats_store.settled_strategy(norm, fp, "serial") is not None

    def test_feedback_off_by_default_never_probes(self):
        engine = Engine(parse(make_flat_doc(200)))
        engine.index.build()
        for _ in range(6):
            engine.query("//item/val")
        arms = engine.stats_store.arms(
            normalize_query_text("//item/val"),
            engine.stats_fingerprint(), "serial")
        assert len(arms) == 1                 # only the static strategy ran

    def test_recost_ranks_against_observed_cardinalities(self):
        engine = Engine(parse(make_flat_doc(64)))
        engine.query("//item/val")
        ranked = engine.recost("//item/val")
        assert ranked                          # non-empty ranking
        explain = engine.explain("//item/val")
        assert "observed" in explain


class TestParallelDemotionRegression:
    """The BENCH_PR5 case: ``parallel`` auto-upgraded yet measured
    slower than the serial scan must be demoted within the first few
    executions."""

    def test_parallel_demoted_to_serial_after_measured_regression(self):
        engine = Engine(parse(make_flat_doc(2500)), feedback=True)
        text = "//item/val"
        norm = normalize_query_text(text)
        fp = engine.stats_fingerprint()
        # Seed the two measured arms with BENCH_PR5's shape: the
        # parallel upgrade costs ~4% over the serial merged scan.
        for _ in range(MIN_FEEDBACK_SAMPLES):
            engine.stats_store.record(norm, "parallel", fp, "threads:4",
                                      elapsed_ms=26.3)
            engine.stats_store.record(norm, "pipelined", fp, "threads:4",
                                      elapsed_ms=25.3)
        result = engine.query(text, executor="threads:4")
        assert len(result) == 2500
        assert engine._last_strategy == "pipelined"
        assert engine.stats_store.settled_strategy(norm, fp, "threads:4") == "pipelined"
        [demotion] = engine.stats_store.demotions
        assert demotion.from_strategy == "parallel"
        assert demotion.to_strategy == "pipelined"
        assert "demoted" in demotion.reason

    def test_demotion_survives_the_plan_cache(self):
        """A cached ``parallel`` plan is re-cost on hit once the
        measured history points elsewhere."""
        engine = Engine(parse(make_flat_doc(2500)), feedback=True)
        text = "//item/val"
        norm = normalize_query_text(text)
        fp = engine.stats_fingerprint()
        engine.query(text, executor="threads:4")     # caches the parallel plan
        assert engine._last_strategy == "parallel"
        engine.stats_store.clear()            # seed a clean measured history
        for _ in range(MIN_FEEDBACK_SAMPLES):
            engine.stats_store.record(norm, "parallel", fp, "threads:4",
                                      elapsed_ms=26.3)
            engine.stats_store.record(norm, "pipelined", fp, "threads:4",
                                      elapsed_ms=25.3)
        engine.query(text, executor="threads:4")     # hit -> advised -> recost
        assert engine._last_strategy == "pipelined"
        assert engine.stats_store.demotions


# ----------------------------------------------------------------------
# Introspection surfaces: Database.stats(), QueryService.stats(), CLI.
# ----------------------------------------------------------------------

class TestDatabaseStats:
    def test_stats_snapshot_shape(self):
        from repro.engine.database import Database

        db = Database.from_xml("<bib><book><title>t</title></book></bib>")
        db.query("//book/title")
        stats = db.stats()
        assert stats["document"]["n_elements"] == 3
        assert "/" in stats["document"]["fingerprint"]
        assert stats["plan_cache"]["misses"] >= 1
        assert stats["statstore"]["records"] >= 1
        assert stats["slow_queries"] is None
        assert stats["service"] is None
        assert stats["feedback"] is False
        json.dumps(stats)

    def test_doc_stats_still_exposes_document_statistics(self):
        from repro.engine.database import Database

        db = Database.from_xml("<a><b/></a>")
        assert db.doc_stats.n_elements == 2

    def test_connect_feedback_flag_reaches_the_engine(self):
        import repro

        with repro.connect("<a><b/></a>", feedback=True) as db:
            assert db.engine.feedback is True
        with repro.connect("<a><b/></a>") as db:
            assert db.engine.feedback is False


class TestServiceStats:
    def test_service_stats_and_slow_log_tagging(self):
        import repro

        with repro.connect("<bib><book><title>t</title></book></bib>") as db:
            db.configure_slow_log(0.0)        # threshold 0: log everything
            service = db.serve(workers=2)
            service.query("//book/title")
            service.query("//book/title")     # result-cache hit
            stats = service.stats()
            assert stats["counters"]["submitted"] >= 2
            assert stats["counters"]["completed"] >= 1
            assert 0.0 <= stats["worker_utilization"] <= 1.0
            assert stats["uptime_s"] > 0
            main = stats["documents"]["main"]
            assert main["statstore"]["records"] >= 1
            assert main["plan_cache"]["misses"] >= 1
            # the slow log was routed through the service with tags
            records = db.slow_log.entries
            assert records
            assert records[-1].snapshot_id is not None
            assert records[-1].deadline_state in ("none", "ok")
            assert "snapshot=" in records[-1].describe()
            assert stats["counters"]["slow_queries"] >= 1
            json.dumps(stats)

    def test_database_stats_embeds_the_running_service(self):
        import repro

        with repro.connect("<a><b/></a>") as db:
            db.serve(workers=1).query("//b")
            stats = db.stats()
            assert stats["service"] is not None
            assert stats["service"]["counters"]["completed"] >= 1


class TestObsCli:
    def test_report_renders_database_stats_json(self, tmp_path, capsys):
        from repro.engine.database import Database
        from repro.obs.__main__ import main

        db = Database.from_xml("<bib><book><title>t</title></book></bib>")
        db.query("//book/title")
        path = tmp_path / "stats.json"
        path.write_text(json.dumps(db.stats()), encoding="utf-8")
        assert main(["report", "--stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "runtime statistics" in out
        assert "//book/title" in out
        assert "plan cache" in out

    def test_report_renders_jsonl_export(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        store = StatsStore()
        store.record("//a//b", "pipelined", FP, "serial", elapsed_ms=2.5, items=3)
        path = tmp_path / "stats.jsonl"
        store.export_jsonl(path)
        assert main(["report", "--stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "//a//b" in out and "pipelined" in out

    def test_report_rejects_unreadable_input(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["report", "--stats", str(tmp_path / "nope.json")]) == 2
        assert "cannot read stats" in capsys.readouterr().err

    def test_report_rejects_unknown_schema_versions(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "stats.json"
        path.write_text(json.dumps({"schema": 99, "plans": []}),
                        encoding="utf-8")
        assert main(["report", "--stats", str(path)]) == 2
        assert "schema 99" in capsys.readouterr().err

    def test_stats_payloads_declare_schema_1(self):
        import repro

        with repro.connect("<a><b/></a>") as db:
            assert db.stats()["schema"] == 1
            service = db.serve(workers=1)
            assert service.stats()["schema"] == 1
