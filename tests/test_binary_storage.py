"""Tests for the succinct binary storage format."""

import pytest

from hypothesis import given

from repro.datagen import DATASETS
from repro.engine import Engine
from repro.xmlkit import parse, serialize
from repro.xmlkit.binary import StorageError, dump, load

from tests.test_property_based import COMMON_SETTINGS, xml_documents


class TestRoundTrip:
    def test_small_document(self, small_bib):
        again = load(dump(small_bib))
        assert serialize(again.root) == serialize(small_bib.root)

    def test_labels_recomputed(self, small_bib):
        again = load(dump(small_bib))
        for a, b in zip(small_bib.nodes, again.nodes, strict=True):
            assert (a.nid, a.start, a.end, a.level) == \
                (b.nid, b.start, b.end, b.level)
            assert a.tag == b.tag

    def test_attributes_and_text(self):
        doc = parse('<a x="1" y="&lt;z&gt;">mixed <b/> text</a>')
        assert serialize(load(dump(doc)).root) == serialize(doc.root)

    @pytest.mark.parametrize("name", ["d2", "d4"])
    def test_generated_corpora(self, name):
        doc = DATASETS[name].generate(scale=0.05)
        again = load(dump(doc))
        assert serialize(again.root) == serialize(doc.root)

    @COMMON_SETTINGS
    @given(doc=xml_documents())
    def test_random_documents(self, doc):
        assert serialize(load(dump(doc)).root) == serialize(doc.root)

    def test_queries_run_on_loaded_document(self, small_bib):
        engine = Engine(load(dump(small_bib)))
        result = engine.query("//book[author]/title")
        assert len(result) == 2


class TestCompactness:
    def test_dictionary_encoding_beats_text_on_repetitive_data(self):
        # Tag names are stored once: dblp-style data (many repeated
        # records) must be substantially smaller than the XML text.
        doc = DATASETS["d5"].generate(scale=0.1)
        text_size = len(serialize(doc.root).encode())
        binary_size = len(dump(doc))
        assert binary_size < 0.8 * text_size

    def test_deduplicates_repeated_strings(self):
        doc = parse("<r>" + "<x>same</x>" * 100 + "</r>")
        payload = dump(doc)
        assert payload.count(b"same") == 1


class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(StorageError):
            load(b"NOPE" + b"\x00" * 10)

    def test_truncated(self, small_bib):
        payload = dump(small_bib)
        with pytest.raises(StorageError):
            load(payload[: len(payload) // 2])

    def test_corrupted_opcode(self, small_bib):
        payload = bytearray(dump(small_bib))
        payload[-1] = 0x63  # garbage opcode / imbalance
        with pytest.raises(StorageError):
            load(bytes(payload))
