"""The flat struct-of-arrays arena (BTRA1): round-trip, zero-copy
reopen, lazy node views, snapshot file lifecycle.

The arena is the cross-process scan image behind ``executor="processes"``:
one contiguous buffer a worker mmaps read-only and walks as columns.
Everything Theorem 1 needs — pre-order node ids, region labels,
ancestorship — must survive the round trip bit for bit.
"""

import mmap
import os

import pytest

from repro.errors import ReproError
from repro.xmlkit import parse
from repro.xmlkit.arena import (
    ArenaDocument,
    DocumentArena,
    arena_file_for,
    release_arena,
)
from repro.xmlkit.tree import ELEMENT, TEXT

XML = ("<bib>" + "".join(
    f"<shelf><book year='{1990 + i % 7}' id='b{i}'><author>a{i % 3}</author>"
    f"<title>t{i}</title><price>{i % 40}</price></book></shelf>"
    for i in range(40)) + "</bib>")


def roundtrip(doc):
    return DocumentArena.from_buffer(
        DocumentArena.from_document(doc).to_bytes())


class TestRoundTrip:
    def assert_equivalent(self, doc, arena_doc):
        assert len(arena_doc.nodes) == len(doc.nodes)
        for node in doc.nodes:
            twin = arena_doc.nodes[node.nid]
            assert twin.nid == node.nid
            assert twin.kind == node.kind
            assert twin.tag == node.tag
            assert twin.text == node.text
            assert (twin.start, twin.end, twin.level) == \
                (node.start, node.end, node.level)
            assert twin.attrs == node.attrs
            assert [c.nid for c in twin.children] == \
                [c.nid for c in node.children]
            assert (twin.parent.nid if twin.parent else None) == \
                (node.parent.nid if node.parent else None)

    def test_every_field_survives(self):
        doc = parse(XML)
        self.assert_equivalent(doc, roundtrip(doc).document())

    def test_unicode_text_and_attrs(self):
        doc = parse("<a läng='ü'>têxt — ∀x</a>".replace("läng", "lang"))
        self.assert_equivalent(doc, roundtrip(doc).document())

    def test_root_discovery_skips_non_elements(self):
        doc = parse("<?xml version='1.0'?><a><b/></a>")
        arena_doc = roundtrip(doc).document()
        assert arena_doc.root is not None
        assert arena_doc.root.tag == doc.root.tag

    def test_string_values_match(self):
        doc = parse(XML)
        arena_doc = roundtrip(doc).document()
        for node in doc.nodes:
            if node.kind == ELEMENT:
                assert arena_doc.nodes[node.nid].string_value() == \
                    node.string_value()

    def test_bad_magic_refused(self):
        with pytest.raises(ReproError, match="magic"):
            DocumentArena.from_buffer(b"NOTANARENA" + b"\x00" * 64)

    def test_truncated_buffer_refused(self):
        blob = DocumentArena.from_document(parse(XML)).to_bytes()
        with pytest.raises(ReproError, match="truncated"):
            DocumentArena.from_buffer(blob[:len(blob) // 2])


class TestZeroCopy:
    def test_columns_view_the_mmap(self, tmp_path):
        path = tmp_path / "doc.btra"
        path.write_bytes(DocumentArena.from_document(parse(XML)).to_bytes())
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        arena = DocumentArena.from_buffer(mapped)
        assert isinstance(arena.parent, memoryview)
        assert isinstance(arena.heap, memoryview)
        assert arena._buffer is mapped
        # The view is usable end to end before any copy happens.
        doc = arena.document()
        assert doc.root.tag == "bib"

    def test_lazy_materialization(self):
        doc = parse(XML)
        arena_doc = roundtrip(doc).document()
        assert isinstance(arena_doc, ArenaDocument)
        baseline = arena_doc.materialized()
        assert baseline <= 2                   # root discovery only
        arena_doc.nodes[5]
        arena_doc.nodes[6]
        assert arena_doc.materialized() <= baseline + 2

    def test_node_views_are_identity_stable(self):
        arena_doc = roundtrip(parse(XML)).document()
        node = arena_doc.nodes[7]
        assert arena_doc.nodes[7] is node
        kid = node.children[0] if node.children else None
        if kid is not None:
            assert kid.parent is node


class TestSnapshotFiles:
    def test_arena_file_written_once_and_cached(self):
        doc = parse("<a><b/></a>")
        path = arena_file_for(doc)
        try:
            assert os.path.exists(path)
            assert arena_file_for(doc) == path
            with open(path, "rb") as handle:
                arena = DocumentArena.from_buffer(handle.read())
            assert arena.n_nodes == len(doc.nodes)
        finally:
            release_arena(doc)

    def test_release_unlinks_and_is_idempotent(self):
        doc = parse("<a><b/></a>")
        path = arena_file_for(doc)
        release_arena(doc)
        assert not os.path.exists(path)
        release_arena(doc)                     # no-op, no error
        # A fresh request after release writes a new file.
        path2 = arena_file_for(doc)
        try:
            assert path2 != path
            assert os.path.exists(path2)
        finally:
            release_arena(doc)

    def test_text_payloads_slice_the_heap(self):
        doc = parse("<a>alpha<b>beta</b></a>")
        arena = roundtrip(doc)
        texts = [arena.payload_bytes(n.nid) for n in doc.nodes
                 if n.kind == TEXT]
        assert b"alpha" in texts and b"beta" in texts
