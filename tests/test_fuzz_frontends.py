"""Fuzzing the front ends: no input may crash with anything but the
library's own typed errors.

The tokenizer, tree parser, XPath parser and FLWOR parser are all
hand-written; these suites feed them hostile input and assert the
failure contract: a :class:`~repro.errors.ReproError` subclass or a
clean parse — never ``IndexError``/``RecursionError``/silent garbage.
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.errors import QuerySyntaxError, ReproError, XMLSyntaxError
from repro.xmlkit import parse, serialize
from repro.xmlkit.tokenizer import tokenize
from repro.xpath.parser import parse_xpath
from repro.xquery.parser import parse_query

FUZZ_SETTINGS = settings(max_examples=150, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

_xmlish = st.text(
    alphabet=st.sampled_from(list("<>/=&;'\"ab1 \n![CDATA-?")), max_size=60)
_queryish = st.lists(
    st.sampled_from(list("/[]@$.*()=<>! abfor") + ["//", "::", "and", "$x"]),
    max_size=30).map("".join)


class TestTokenizerFuzz:
    @FUZZ_SETTINGS
    @given(text=_xmlish)
    @example("<a b=>")
    @example("<!DOCTYPE")
    @example("<a>&#xZZ;</a>")
    @example("<?x")
    def test_never_crashes(self, text):
        try:
            list(tokenize(text))
        except XMLSyntaxError:
            pass
        except ValueError as exc:
            # numeric character references can overflow chr(); that must
            # surface as a typed error, not a bare ValueError.
            pytest.fail(f"untyped error: {exc!r}")

    @FUZZ_SETTINGS
    @given(text=_xmlish)
    def test_parser_never_crashes(self, text):
        try:
            parse(text)
        except ReproError:
            pass

    @FUZZ_SETTINGS
    @given(text=st.text(max_size=40))
    def test_arbitrary_unicode_content_round_trips(self, text):
        if any(ch in text for ch in "<>&\r"):
            return  # escaped forms covered elsewhere; \r normalizes
        doc_text = f"<a>{text}</a>"
        try:
            doc = parse(doc_text)
        except ReproError:
            return
        assert parse(serialize(doc.root)).root.string_value() == \
            doc.root.string_value()


class TestQueryParserFuzz:
    @FUZZ_SETTINGS
    @given(text=_queryish)
    @example("//")
    @example("$")
    @example("a[")
    @example("//a[//b")
    @example("for $x in")
    def test_xpath_never_crashes(self, text):
        try:
            parse_xpath(text)
        except QuerySyntaxError:
            pass

    @FUZZ_SETTINGS
    @given(text=_queryish)
    @example("<a>{")
    @example("for $x in //a return <b>")
    @example("(: unterminated")
    def test_query_never_crashes(self, text):
        try:
            parse_query(text)
        except QuerySyntaxError:
            pass
