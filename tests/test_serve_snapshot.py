"""Snapshot layer: fork fidelity, catalog versioning, pin/retire."""

import pytest

from repro.errors import UsageError
from repro.serve import Catalog, fork_document
from repro.serve.snapshot import SnapshotUpdater
from repro.xmlkit.parser import parse
from repro.xmlkit.serialize import serialize
from repro.xmlkit.tree import DocumentBuilder

LIBRARY = """
<library>
  <shelf genre="systems">
    <book year="1999"><author>Stevens</author><title>TCP/IP</title>
      <price>65.0</price></book>
    <book year="2004"><author>Tanenbaum</author><title>Networks</title>
      <price>55.0</price></book>
  </shelf>
  <shelf genre="theory">
    <book year="2009"><author>Cormen</author><title>CLRS</title>
      <price>80.0</price></book>
  </shelf>
</library>
"""


def elems(node):
    """Element children (the corpus has whitespace text nodes)."""
    return [c for c in node.children if c.tag is not None]


def subtree(tag: str, **children) -> object:
    builder = DocumentBuilder()
    builder.start_element(tag)
    for name, text in children.items():
        builder.element(name, text)
    builder.end_element()
    return builder.finish().root


class TestForkDocument:
    def test_fork_serializes_identically(self):
        doc = parse(LIBRARY)
        fork = fork_document(doc)
        assert serialize(fork.document_node) == serialize(doc.document_node)

    def test_fork_preserves_labels_verbatim(self):
        doc = parse(LIBRARY)
        fork = fork_document(doc)
        assert len(fork.nodes) == len(doc.nodes)
        for src, clone in zip(doc.nodes, fork.nodes):
            assert (clone.nid, clone.kind, clone.tag, clone.text) \
                == (src.nid, src.kind, src.tag, src.text)
            assert (clone.start, clone.end, clone.level) \
                == (src.start, src.end, src.level)
            assert clone.doc is fork

    def test_fork_shares_no_nodes(self):
        doc = parse(LIBRARY)
        fork = fork_document(doc)
        originals = {id(n) for n in doc.nodes}
        assert all(id(n) not in originals for n in fork.nodes)

    def test_mutating_fork_leaves_original_alone(self):
        doc = parse(LIBRARY)
        before = serialize(doc.document_node)
        fork = fork_document(doc)
        from repro.xmlkit.update import DocumentUpdater

        DocumentUpdater(fork).delete_subtree(elems(fork.root)[0])
        assert serialize(doc.document_node) == before
        assert serialize(fork.document_node) != before


class TestCatalogVersioning:
    def test_register_and_query_current(self):
        catalog = Catalog()
        snap = catalog.register("lib", LIBRARY)
        assert snap.snapshot_id == 1
        assert catalog.current("lib") is snap
        assert "lib" in catalog and "other" not in catalog

    def test_duplicate_registration_refused(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        with pytest.raises(UsageError, match="already registered"):
            catalog.register("lib", LIBRARY)

    def test_commit_publishes_next_snapshot(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        with catalog.updater("lib") as up:
            shelf = elems(up.doc.root)[0]
            up.insert_subtree(shelf, subtree("book", author="Knuth",
                                             title="TAOCP"))
        current = catalog.current("lib")
        assert current.snapshot_id == 2
        engine = catalog.engine_for(current)
        assert len(engine.query("//book")) == 4

    def test_abort_discards_the_fork(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        up = catalog.updater("lib")
        up.delete_subtree(elems(up.doc.root)[0])
        up.abort()
        assert catalog.current("lib").snapshot_id == 1

    def test_exception_inside_with_aborts(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        with pytest.raises(RuntimeError, match="boom"):
            with catalog.updater("lib") as up:
                up.delete_subtree(elems(up.doc.root)[0])
                raise RuntimeError("boom")
        assert catalog.current("lib").snapshot_id == 1

    def test_double_commit_refused(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        up = catalog.updater("lib")
        up.commit()
        with pytest.raises(RuntimeError, match="already committed"):
            up.commit()

    def test_snapshot_ids_monotonic_across_documents(self):
        catalog = Catalog()
        catalog.register("a", LIBRARY)
        catalog.register("b", LIBRARY)
        with catalog.updater("a"):
            pass
        assert catalog.current("b").snapshot_id == 2
        assert catalog.current("a").snapshot_id == 3

    def test_unknown_document(self):
        catalog = Catalog()
        with pytest.raises(UsageError, match="unknown document"):
            catalog.current("nope")


class TestPinning:
    def test_pinned_snapshot_survives_publish(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        pinned = catalog.pin("lib")
        with catalog.updater("lib") as up:
            up.delete_subtree(elems(up.doc.root)[0])
        # The pinned version still answers with the old content.
        engine = catalog.engine_for(pinned)
        assert len(engine.query("//book")) == 3
        assert catalog.live_ids("lib") == {1, 2}
        catalog.unpin(pinned)
        assert catalog.live_ids("lib") == {2}
        assert catalog.dropped_ids("lib") == {1}

    def test_unpinned_superseded_snapshot_retires_on_publish(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        with catalog.updater("lib"):
            pass
        assert catalog.dropped_ids("lib") == {1}

    def test_engine_for_dropped_snapshot_refused(self):
        catalog = Catalog()
        old = catalog.register("lib", LIBRARY)
        with catalog.updater("lib"):
            pass
        with pytest.raises(UsageError, match="dropped"):
            catalog.engine_for(old)

    def test_unpin_without_pin_refused(self):
        catalog = Catalog()
        snap = catalog.register("lib", LIBRARY)
        with pytest.raises(UsageError, match="not pinned"):
            catalog.unpin(snap)

    def test_retire_listener_fires_outside_lock(self):
        catalog = Catalog()
        retired = []
        catalog.on_retire(
            lambda s: retired.append((s.name, s.snapshot_id,
                                      catalog.live_ids(s.name))))
        catalog.register("lib", LIBRARY)
        with catalog.updater("lib"):
            pass
        assert retired == [("lib", 1, frozenset({2}))]

    def test_resolve_maps_base_nodes_into_the_fork(self):
        catalog = Catalog()
        base = catalog.register("lib", LIBRARY)
        first_book = elems(elems(base.doc.root)[0])[0]
        up = catalog.updater("lib")
        assert isinstance(up, SnapshotUpdater)
        up.delete_subtree(first_book)      # base node, resolved into fork
        snap = up.commit()
        engine = catalog.engine_for(snap)
        assert len(engine.query("//book")) == 2


class TestSnapshotPlanCache:
    def test_versions_share_one_cache_without_aliasing(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        pinned = catalog.pin("lib")
        old_engine = catalog.engine_for(pinned)
        old_engine.query("//book/title")
        with catalog.updater("lib") as up:
            up.delete_subtree(elems(up.doc.root)[0])
        new_engine = catalog.engine_for(catalog.current("lib"))
        cache = catalog.plan_cache("lib")
        assert new_engine.plan_cache is cache
        assert old_engine.plan_cache is cache
        # Different snapshot => different key => both results correct.
        assert len(old_engine.query("//book/title")) == 3
        assert len(new_engine.query("//book/title")) == 1
        assert len(cache) == 2
        catalog.unpin(pinned)

    def test_retirement_purges_the_snapshots_plans(self):
        catalog = Catalog()
        catalog.register("lib", LIBRARY)
        pinned = catalog.pin("lib")
        catalog.engine_for(pinned).query("//book/title")
        cache = catalog.plan_cache("lib")
        assert len(cache) == 1
        with catalog.updater("lib"):
            pass
        catalog.unpin(pinned)          # last unpin retires snapshot 1
        assert len(cache) == 0

    def test_plans_are_stamped_with_their_snapshot(self):
        catalog = Catalog()
        snap = catalog.register("lib", LIBRARY)
        engine = catalog.engine_for(snap)
        engine.query("//book/title")
        cache = catalog.plan_cache("lib")
        [key] = list(cache._entries)
        plan = cache.get(key)
        assert plan.snapshot_id == snap.snapshot_id
