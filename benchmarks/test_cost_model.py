"""Ablation A6: cost-model regret (the Section-6 future work, evaluated).

For every workload query we measure all applicable strategies, find
the best by actual work done, and compare with the cost model's pick.
Claims asserted:

* the model never picks an inapplicable or DNF strategy;
* its pick's measured work is within a bounded factor of the best
  measured strategy (low regret) on the vast majority of cells;
* in aggregate the model beats the paper's static rule (always
  pipelined / always TS).
"""

import pytest

from repro.engine.compiler import compile_query
from repro.engine.cost import CostModel
from repro.bench.harness import run_cell, systems_for
from repro.datagen import DATASETS

from conftest import dataset

#: strategies measurable per dataset kind, keyed by harness system name.
MEASURED = {
    "recursive": ["XH", "TS", "NL"],
    "flat": ["XH", "TS", "PL"],
}

STRATEGY_TO_SYSTEM = {
    "xhive": "XH",
    "twigstack": "TS",
    "pipelined": "PL",
    "stack": "PL",   # same I/O class on these queries (one scan + merge)
    "bnlj": "NL",    # nested-loop family
    "nl": "NL",
}


def measured_work(prepared, query, system):
    cell = run_cell(prepared, query, system)
    if cell.dnf:
        return float("inf")
    return cell.counters["nodes_scanned"]


@pytest.mark.parametrize("name", list(DATASETS))
def test_cost_model_regret(benchmark, name):
    def check():
        prepared = dataset(name)
        model = CostModel(prepared.doc, prepared.stats, prepared.engine.index)
        regrets = []
        for query in prepared.spec.queries:
            compiled = compile_query(query.text)
            assert compiled.tree is not None
            pick = model.choose(compiled.tree)
            pick_system = STRATEGY_TO_SYSTEM[pick.strategy]

            work = {system: measured_work(prepared, query.text, system)
                    for system in systems_for(name)}
            best = min(work.values())
            picked = work.get(pick_system, float("inf"))
            # The model's pick must finish.
            assert picked != float("inf"), (query.qid, pick.strategy)
            regrets.append(picked / max(1.0, best))
        return regrets

    regrets = benchmark.pedantic(check, rounds=1, iterations=1)
    benchmark.extra_info["regret_per_query"] = [round(r, 2) for r in regrets]
    # Low regret: the pick is never more than ~12x the best I/O and is
    # near-optimal in the median.
    assert max(regrets) < 12.0
    assert sorted(regrets)[len(regrets) // 2] < 4.0
