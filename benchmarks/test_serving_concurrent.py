"""Serving throughput: 8-worker QueryService vs a serial engine loop.

The PR-4 acceptance benchmark: a read-heavy workload of repeated
queries (the serving sweet spot — hot plans, hot results) must sustain
at least 2x the aggregate QPS of a serial ``Engine.query`` loop over
the same request stream.  The win is GIL-honest: it comes from the
snapshot-keyed result cache and in-flight coalescing, not from
pretending Python threads parallelise compute.

Writes ``BENCH_PR4.json`` at the repo root (the concurrency-smoke CI
job uploads it as an artifact).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import wait
from pathlib import Path

from repro.engine.session import Engine
from repro.serve import Catalog, QueryService
from repro.xmlkit.tree import Document, DocumentBuilder

BENCH_PR4_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"
WORKERS = 8
N_REQUESTS = int(os.environ.get("REPRO_SERVE_BENCH_REQUESTS", "600"))

#: The repeated-query mix: a handful of distinct texts cycled over the
#: request stream, as a cache-friendly read-mostly service would see.
QUERY_MIX = (
    "//book/title",
    "//book[author]/title",
    "//shelf/book/author",
    "//shelf[book]/book[title]",
    "for $b in //book where $b/author return $b/title",
)


def build_corpus(shelves: int = 40, books: int = 50) -> Document:
    builder = DocumentBuilder()
    builder.start_element("library")
    serial = 0
    for s in range(shelves):
        builder.start_element("shelf", {"genre": f"g{s % 7}"})
        for _ in range(books):
            serial += 1
            builder.start_element("book", {"id": f"b{serial}"})
            builder.element("author", f"author-{serial % 211}")
            builder.element("title", f"title-{serial}")
            builder.end_element()
        builder.end_element()
    builder.end_element()
    return builder.finish()


def request_stream(n: int) -> list[str]:
    return [QUERY_MIX[i % len(QUERY_MIX)] for i in range(n)]


def test_concurrent_service_beats_serial_by_2x():
    doc = build_corpus()
    stream = request_stream(N_REQUESTS)

    # Serial baseline: one engine, one thread, full execution per
    # request (plans are cached; results are not).
    engine = Engine(doc)
    for text in QUERY_MIX:  # warm the plan cache out of the timed region
        engine.query(text)
    started = time.perf_counter()
    serial_checksum = 0
    for text in stream:
        serial_checksum += len(engine.query(text))
    serial_s = time.perf_counter() - started
    serial_qps = len(stream) / serial_s

    # Concurrent service: same stream through 8 workers.
    catalog = Catalog()
    catalog.register("main", doc)
    service = QueryService(catalog, workers=WORKERS,
                           max_queue=max(64, N_REQUESTS),
                           result_cache_size=64)
    for text in QUERY_MIX:  # identical warmup: plans hot, results cold
        service.query(text)
    started = time.perf_counter()
    futures = [service.submit(text, timeout_ms=60_000) for text in stream]
    wait(futures)
    concurrent_s = time.perf_counter() - started
    concurrent_qps = len(stream) / concurrent_s
    served_checksum = sum(len(f.result()) for f in futures)
    stats = service.stats()
    service.close()

    # Same answers on both sides (the snapshot never changed).
    assert served_checksum == serial_checksum

    speedup = concurrent_qps / serial_qps
    BENCH_PR4_PATH.write_text(json.dumps({
        "benchmark": "serving_concurrent_read_heavy",
        "workers": WORKERS,
        "n_requests": len(stream),
        "distinct_queries": len(QUERY_MIX),
        "n_nodes": len(doc.nodes),
        "serial_qps": round(serial_qps, 1),
        "concurrent_qps": round(concurrent_qps, 1),
        "speedup": round(speedup, 2),
        "service_stats": stats,
    }, indent=2) + "\n", encoding="utf-8")

    assert speedup >= 2.0, (
        f"aggregate QPS speedup {speedup:.2f}x < 2x "
        f"(serial {serial_qps:.0f} qps, concurrent {concurrent_qps:.0f} qps)")
