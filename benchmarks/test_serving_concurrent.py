"""Serving throughput: 8-worker QueryService vs a serial engine loop.

The PR-4 acceptance benchmark, in two modes:

* **read-heavy (cache-friendly)** — repeated queries (the serving
  sweet spot: hot plans, hot results) must sustain at least 2x the
  aggregate QPS of a serial ``Engine.query`` loop over the same
  request stream.  The win is GIL-honest: it comes from the
  snapshot-keyed result cache and in-flight coalescing, not from
  pretending Python threads parallelise compute — which also means the
  headline speedup measures the *cache*, not execution.
* **unique-params (cache-bypass)** — every request carries a distinct
  parameter binding, so coalescing and the result cache are out of the
  picture and every request truly executes.  This is the honest
  number: real execution QPS under the worker pool (expected *near or
  below* serial on CPython — threads share the GIL), reported with
  p50/p99 run and end-to-end latencies.

Both modes merge into ``BENCH_PR4.json`` at the repo root (the
concurrency-smoke CI job uploads it as an artifact), so the honest
number sits next to the headline one.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import wait
from pathlib import Path

from repro.engine.session import Engine
from repro.serve import Catalog, QueryService
from repro.xmlkit.tree import Document, DocumentBuilder

BENCH_PR4_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"
WORKERS = 8
N_REQUESTS = int(os.environ.get("REPRO_SERVE_BENCH_REQUESTS", "600"))

#: The repeated-query mix: a handful of distinct texts cycled over the
#: request stream, as a cache-friendly read-mostly service would see.
QUERY_MIX = (
    "//book/title",
    "//book[author]/title",
    "//shelf/book/author",
    "//shelf[book]/book[title]",
    "for $b in //book where $b/author return $b/title",
)


def build_corpus(shelves: int = 40, books: int = 50) -> Document:
    builder = DocumentBuilder()
    builder.start_element("library")
    serial = 0
    for s in range(shelves):
        builder.start_element("shelf", {"genre": f"g{s % 7}"})
        for _ in range(books):
            serial += 1
            builder.start_element("book", {"id": f"b{serial}"})
            builder.element("author", f"author-{serial % 211}")
            builder.element("title", f"title-{serial}")
            builder.element("price", str(serial % 97))
            builder.end_element()
        builder.end_element()
    builder.end_element()
    return builder.finish()


def request_stream(n: int) -> list[str]:
    return [QUERY_MIX[i % len(QUERY_MIX)] for i in range(n)]


def merge_bench(update: dict) -> None:
    """Read-modify-write ``BENCH_PR4.json`` so the two modes coexist."""
    payload: dict = {}
    if BENCH_PR4_PATH.exists():
        try:
            payload = json.loads(BENCH_PR4_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    BENCH_PR4_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")


def quantile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def test_concurrent_service_beats_serial_by_2x():
    doc = build_corpus()
    stream = request_stream(N_REQUESTS)

    # Serial baseline: one engine, one thread, full execution per
    # request (plans are cached; results are not).
    engine = Engine(doc)
    for text in QUERY_MIX:  # warm the plan cache out of the timed region
        engine.query(text)
    started = time.perf_counter()
    serial_checksum = 0
    for text in stream:
        serial_checksum += len(engine.query(text))
    serial_s = time.perf_counter() - started
    serial_qps = len(stream) / serial_s

    # Concurrent service: same stream through 8 workers.
    catalog = Catalog()
    catalog.register("main", doc)
    service = QueryService(catalog, workers=WORKERS,
                           max_queue=max(64, N_REQUESTS),
                           result_cache={"max_entries": 64})
    for text in QUERY_MIX:  # identical warmup: plans hot, results cold
        service.query(text)
    started = time.perf_counter()
    futures = [service.submit(text, timeout_ms=60_000) for text in stream]
    wait(futures)
    concurrent_s = time.perf_counter() - started
    concurrent_qps = len(stream) / concurrent_s
    served_checksum = sum(len(f.result()) for f in futures)
    stats = service.stats()
    service.close()

    # Same answers on both sides (the snapshot never changed).
    assert served_checksum == serial_checksum

    speedup = concurrent_qps / serial_qps
    merge_bench({
        "benchmark": "serving_concurrent_read_heavy",
        "workers": WORKERS,
        "n_requests": len(stream),
        "distinct_queries": len(QUERY_MIX),
        "n_nodes": len(doc.nodes),
        "serial_qps": round(serial_qps, 1),
        "concurrent_qps": round(concurrent_qps, 1),
        "speedup": round(speedup, 2),
        "service_stats": {k: stats[k] for k in
                          ("queue_depth", "inflight", "result_cache_size",
                           "workers")},
    })

    assert speedup >= 2.0, (
        f"aggregate QPS speedup {speedup:.2f}x < 2x "
        f"(serial {serial_qps:.0f} qps, concurrent {concurrent_qps:.0f} qps)")


def test_unique_params_mode_reports_honest_execution_qps():
    """Cache-bypass mode: distinct parameter bindings per request, so
    every request executes — no coalescing, no result-cache hits.  No
    speedup bar here (CPython threads share the GIL); the assertion is
    that the *measurement* is honest: zero cache hits, every request
    really ran, and the latency quantiles are reported."""
    doc = build_corpus()
    text = "for $b in //book where $b/price < $p return $b/title"
    n_requests = max(100, N_REQUESTS // 3)
    bindings = [{"p": float(i % 97)} for i in range(n_requests)]

    engine = Engine(doc)
    engine.query(text, params=bindings[0])     # warm the plan cache
    started = time.perf_counter()
    serial_checksum = 0
    for params in bindings:
        serial_checksum += len(engine.query(text, params=params))
    serial_s = time.perf_counter() - started
    serial_qps = n_requests / serial_s

    catalog = Catalog()
    catalog.register("main", doc)
    service = QueryService(catalog, workers=WORKERS,
                           max_queue=max(64, n_requests),
                           result_cache={"max_entries": 64})
    service.query(text, params=bindings[0])    # identical warmup
    started = time.perf_counter()
    futures = [service.submit(text, params=params, timeout_ms=60_000)
               for params in bindings]
    wait(futures)
    concurrent_s = time.perf_counter() - started
    results = [f.result() for f in futures]
    stats = service.stats()
    service.close()

    assert sum(len(r) for r in results) == serial_checksum
    # The honesty checks: nothing was coalesced or served from cache.
    assert all(not r.cached for r in results)
    assert stats["counters"]["coalesced"] == 0
    assert stats["counters"]["result_cache_hits"] == 0
    assert stats["counters"]["completed"] >= n_requests

    run_ms = sorted(r.run_ms for r in results)
    total_ms = sorted(r.wait_ms + r.run_ms for r in results)
    merge_bench({"unique_params_mode": {
        "query": text,
        "n_requests": n_requests,
        "workers": WORKERS,
        "serial_qps": round(serial_qps, 1),
        "concurrent_qps": round(n_requests / concurrent_s, 1),
        "speedup": round((n_requests / concurrent_s) / serial_qps, 2),
        "run_ms_p50": round(quantile(run_ms, 0.50), 3),
        "run_ms_p99": round(quantile(run_ms, 0.99), 3),
        "latency_ms_p50": round(quantile(total_ms, 0.50), 3),
        "latency_ms_p99": round(quantile(total_ms, 0.99), 3),
        "result_cache_hits": stats["counters"]["result_cache_hits"],
        "coalesced": stats["counters"]["coalesced"],
    }})
