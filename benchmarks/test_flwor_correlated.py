"""The Section-1 motivation, measured: naive FLWOR vs BlossomTree.

The paper's opening argument: evaluating a FLWOR's path expressions
"for each iteration in the for-loop ... may be very inefficient, due
to the redundancy during the loop".  BlossomTree evaluation matches
all correlated paths in one pattern-matching pass instead.

We run Example 1's book-pair query over growing bibliographies and
measure path-evaluation work:

* the naive interpreter re-evaluates ``$b/author`` / ``$b/title`` paths
  per tuple — its navigation work grows with (#books)^2;
* the BlossomTree engine performs ONE merged document scan regardless
  of the number of tuples; only the (unavoidable) pairwise where
  checks remain quadratic.
"""

import pytest

from repro.engine import Engine
from repro.xmlkit import parse
from repro.xmlkit.storage import ScanCounters

QUERY = """
for $b1 in doc("bib.xml")//book, $b2 in doc("bib.xml")//book
let $a1 := $b1/author
let $a2 := $b2/author
where $b1 << $b2 and not($b1/title = $b2/title)
      and deep-equal($a1, $a2)
return <pair>{ $b1/title }{ $b2/title }</pair>
"""


def bibliography(n_books: int):
    parts = ["<bib>"]
    for i in range(n_books):
        author = f"<author><last>a{i % 7}</last></author>" if i % 3 else ""
        parts.append(f"<book><title>t{i}</title>{author}"
                     f"<price>{10 + i}</price></book>")
    parts.append("</bib>")
    return parse("".join(parts))


def blossom_scans(doc) -> int:
    counters = ScanCounters()
    Engine(doc).query(QUERY, strategy="pipelined", counters=counters)
    return counters.scans_started


def test_blossom_uses_one_scan_regardless_of_tuples(benchmark):
    def check():
        for n_books in (10, 40, 80):
            assert blossom_scans(bibliography(n_books)) == 1

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_results_agree(benchmark):
    def check():
        doc = bibliography(30)
        engine = Engine(doc)
        reference = engine.query(QUERY, strategy="naive").serialize()
        for strategy in ("pipelined", "stack", "bnlj", "cost"):
            assert engine.query(QUERY, strategy=strategy).serialize() == \
                reference, strategy
        return len(engine.query(QUERY, strategy="naive"))

    n_pairs = benchmark.pedantic(check, rounds=1, iterations=1)
    benchmark.extra_info["book_pairs_found"] = n_pairs


@pytest.mark.parametrize("engine_kind", ["naive", "blossom"])
@pytest.mark.parametrize("n_books", [20, 40, 80])
def test_correlated_flwor_timing(benchmark, engine_kind, n_books):
    doc = bibliography(n_books)
    engine = Engine(doc)
    strategy = "naive" if engine_kind == "naive" else "pipelined"

    def run():
        return len(engine.query(QUERY, strategy=strategy))

    result = benchmark(run)
    benchmark.extra_info["n_books"] = n_books
    benchmark.extra_info["n_pairs"] = result


def test_naive_navigation_grows_quadratically(benchmark):
    """The redundancy claim, quantified via the X-Hive-style counter:
    navigational work per (book count) for the naive loop grows ~n,
    i.e. total ~n^2, while the BlossomTree scan count stays at 1."""

    def check():
        from repro.baseline.xhive import XHiveSimulator

        work = {}
        for n_books in (20, 60):
            doc = bibliography(n_books)
            counters = ScanCounters()
            XHiveSimulator(doc, counters=counters).run(QUERY)
            work[n_books] = counters.nodes_scanned
        # 3x the books -> ~9x navigation work (allow a generous band).
        growth = work[60] / work[20]
        assert growth > 5.0, work
        return work

    work = benchmark.pedantic(check, rounds=1, iterations=1)
    benchmark.extra_info["naive_navigation_work"] = work
