"""Table 1 reproduction: dataset statistics.

Regenerates the per-dataset rows (size, #nodes, avg/max depth, |tags|,
recursiveness) and benchmarks the statistics pass itself.  Run
``python -m repro.bench table1`` for the rendered table.
"""

import pytest

from repro.datagen import DATASETS
from repro.xmlkit import compute_stats

from conftest import dataset

#: (recursive?, max |tags| window, max-depth window) per Table 1.
EXPECTED = {
    "d1": (True, (8, 8), (8, 10)),
    "d2": (False, (7, 7), (3, 4)),
    "d3": (False, (30, 55), (5, 8)),
    "d4": (True, (40, 260), (15, 36)),
    "d5": (False, (20, 40), (2, 6)),
}


@pytest.mark.parametrize("name", list(DATASETS))
def test_table1_row(benchmark, name):
    prepared = dataset(name)
    stats = benchmark(compute_stats, prepared.doc, False)

    recursive, tag_window, depth_window = EXPECTED[name]
    assert stats.recursive == recursive
    assert tag_window[0] <= stats.n_distinct_tags <= tag_window[1]
    assert depth_window[0] <= stats.max_depth <= depth_window[1]

    benchmark.extra_info["table1_row"] = stats.table1_row(name)
    benchmark.extra_info["recursion_degree"] = stats.recursion_degree
