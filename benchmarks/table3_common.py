"""Shared driver for the per-dataset Table 3 benchmarks.

Each (system, query) cell becomes one pytest-benchmark entry; DNF cells
(the nested loop exceeding its work budget) are recorded as such in
``extra_info`` and are cheap to "re-run" because the budget cuts them
off deterministically.

Shape assertions (scale- and machine-independent, on work counters):

* TS reads less I/O than XH on every query (index vs navigation);
* PL performs exactly one sequential scan on non-recursive data;
* NL finishes the high-selectivity queries and DNFs the low ones on
  recursive data;
* XH and TS never DNF;
* all finishing systems return the same number of results.
"""

from __future__ import annotations

from repro.bench.harness import CellResult, run_cell, systems_for
from repro.datagen import DATASETS

from conftest import dataset

__all__ = ["cases_for", "run_benchmark_cell", "assert_shape"]


def cases_for(name: str) -> list[tuple[str, str]]:
    return [(system, query.qid)
            for system in systems_for(name)
            for query in DATASETS[name].queries]


def run_benchmark_cell(benchmark, name: str, system: str, qid: str) -> CellResult:
    prepared = dataset(name)
    query = prepared.spec.query(qid)

    def once() -> CellResult:
        return run_cell(prepared, query.text, system)

    cell = benchmark(once)
    benchmark.extra_info["dataset"] = name
    benchmark.extra_info["system"] = system
    benchmark.extra_info["query"] = query.text
    benchmark.extra_info["outcome"] = cell.display()
    benchmark.extra_info["nodes_scanned"] = cell.counters.get("nodes_scanned", 0)
    benchmark.extra_info["n_results"] = cell.n_results
    return cell


def assert_shape(name: str) -> None:
    prepared = dataset(name)
    cells: dict[tuple[str, str], CellResult] = {}
    for system in systems_for(name):
        for query in prepared.spec.queries:
            cells[(system, query.qid)] = run_cell(prepared, query.text, system)

    qids = [q.qid for q in prepared.spec.queries]

    # XH and TS always finish.
    for system in ("XH", "TS"):
        assert not any(cells[(system, qid)].dnf for qid in qids), system

    # TwigStack's index I/O beats navigation on every query.
    for qid in qids:
        assert cells[("TS", qid)].counters["nodes_scanned"] < \
            cells[("XH", qid)].counters["nodes_scanned"], qid

    if DATASETS[name].recursive:
        nl_dnfs = {qid for qid in qids if cells[("NL", qid)].dnf}
        assert "Q1" not in nl_dnfs
        assert {"Q5", "Q6"} <= nl_dnfs
    else:
        n_nodes = len(prepared.doc.nodes)
        for qid in qids:
            pl = cells[("PL", qid)]
            assert not pl.dnf
            assert pl.counters["nodes_scanned"] == n_nodes, qid
            assert pl.counters["nodes_scanned"] <= \
                cells[("XH", qid)].counters["nodes_scanned"], qid

    # Result agreement among finishing systems.
    for qid in qids:
        counts = {cells[(s, qid)].n_results for s in systems_for(name)
                  if not cells[(s, qid)].dnf}
        assert len(counts) == 1, qid
