"""Result-cache policy benchmark: hit / bypass / churn QPS.

The PR-10 acceptance benchmark for the byte-accounted TTL cache
(:mod:`repro.serve.cachepolicy`).  Three phases over one corpus:

* **hit-path** — a small repeated query mix against an ample byte
  budget: after warmup every request is a cache hit, so the measured
  QPS prices the storage's lookup path (lock, TTL check, LRU bump)
  plus service dispatch — the replacement must not give back PR 4's
  headline cache win;
* **bypass** — unique parameter bindings per request, so nothing is
  cacheable and every request executes.  This is the honest execution
  number; it is compared against the recorded ``BENCH_PR4.json``
  ``unique_params_mode`` baseline (concurrent/serial speedup 0.76x on
  the reference box) to prove the policy/storage split costs the
  uncached path nothing;
* **byte-pressure churn** — the same repeated mix squeezed through a
  budget smaller than the working set: admissions and LRU-by-bytes
  evictions on every round.  The phase asserts the evictions actually
  happened and that byte accounting stayed within budget — the
  "eviction exercised" requirement — and reports the sustained QPS
  under constant reclamation.

The artifact is ``BENCH_PR10.json`` at the repo root (read-modify-write
merged so repeated runs and CI coexist); the ``cache-policy-smoke`` CI
job uploads it.  ``REPRO_CACHE_BENCH_REQUESTS`` bounds the stream.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import wait
from pathlib import Path

from repro.engine.session import Engine
from repro.serve import Catalog, QueryService

from test_serving_concurrent import QUERY_MIX, build_corpus, quantile

BENCH_PR10_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"
BENCH_PR4_PATH = BENCH_PR10_PATH.with_name("BENCH_PR4.json")
WORKERS = 8
N_REQUESTS = int(os.environ.get("REPRO_CACHE_BENCH_REQUESTS", "600"))


def merge_bench(update: dict) -> None:
    payload: dict = {}
    if BENCH_PR10_PATH.exists():
        try:
            payload = json.loads(
                BENCH_PR10_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    BENCH_PR10_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                               encoding="utf-8")


def pr4_unique_params_baseline() -> dict | None:
    """The recorded PR-4 cache-bypass numbers, if the artifact exists."""
    if not BENCH_PR4_PATH.exists():
        return None
    try:
        payload = json.loads(BENCH_PR4_PATH.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None
    return payload.get("unique_params_mode")


def drive(service: QueryService, stream, params=None) -> tuple[float, list]:
    started = time.perf_counter()
    futures = [service.submit(text, timeout_ms=60_000,
                              params=params[i] if params else None)
               for i, text in enumerate(stream)]
    wait(futures)
    elapsed = time.perf_counter() - started
    return elapsed, [f.result() for f in futures]


def test_hit_path_qps_and_storage_overhead():
    """Hot-cache throughput through the policy/storage split."""
    doc = build_corpus()
    stream = [QUERY_MIX[i % len(QUERY_MIX)] for i in range(N_REQUESTS)]

    catalog = Catalog()
    catalog.register("main", doc)
    service = QueryService(catalog, workers=WORKERS,
                           max_queue=max(64, N_REQUESTS),
                           result_cache="16mb")
    for text in QUERY_MIX:                 # warm: plans + results hot
        service.query(text)
    elapsed, results = drive(service, stream)
    stats = service.stats()["result_cache"]
    service.close()

    hits = sum(1 for r in results if r.cached)
    qps = len(stream) / elapsed
    merge_bench({
        "benchmark": "result_cache_policy",
        "workers": WORKERS,
        "n_nodes": len(doc.nodes),
        "hit_path": {
            "n_requests": len(stream),
            "qps": round(qps, 1),
            "cached_fraction": round(hits / len(results), 4),
            "storage_bytes": stats["bytes"],
            "lifetime_hit_ratio": stats["hit_ratio"],
            "window_hit_ratio": stats["window"]["hit_ratio"],
        },
    })
    # Coalescing can answer a burst before its entry lands, so not
    # every response is flagged cached — but the vast majority must be,
    # and nothing was ever evicted from an ample budget.
    assert hits >= len(results) * 0.9
    assert stats["evictions"] == 0
    assert stats["bytes"] <= stats["capacity_bytes"]
    assert qps > 0


def test_bypass_qps_matches_pr4_baseline():
    """Unique params: the uncached path must not regress vs BENCH_PR4."""
    doc = build_corpus()
    text = "for $b in //book where $b/price < $p return $b/title"
    n_requests = max(100, N_REQUESTS // 3)
    bindings = [{"p": float(i % 97)} for i in range(n_requests)]

    engine = Engine(doc)
    engine.query(text, params=bindings[0])
    started = time.perf_counter()
    for params in bindings:
        engine.query(text, params=params)
    serial_qps = n_requests / (time.perf_counter() - started)

    catalog = Catalog()
    catalog.register("main", doc)
    service = QueryService(catalog, workers=WORKERS,
                           max_queue=max(64, n_requests),
                           result_cache="16mb")
    service.query(text, params=bindings[0])
    elapsed, results = drive(service, [text] * n_requests, bindings)
    stats = service.stats()
    service.close()

    concurrent_qps = n_requests / elapsed
    speedup = concurrent_qps / serial_qps
    baseline = pr4_unique_params_baseline()
    run_ms = sorted(r.run_ms for r in results)
    merge_bench({"bypass": {
        "query": text,
        "n_requests": n_requests,
        "serial_qps": round(serial_qps, 1),
        "concurrent_qps": round(concurrent_qps, 1),
        "speedup": round(speedup, 2),
        "run_ms_p50": round(quantile(run_ms, 0.50), 3),
        "run_ms_p99": round(quantile(run_ms, 0.99), 3),
        "pr4_baseline_speedup": (baseline or {}).get("speedup"),
        "pr4_baseline_concurrent_qps": (baseline or {}).get(
            "concurrent_qps"),
    }})
    # Honesty: nothing was cached or coalesced — every request ran.
    assert all(not r.cached for r in results)
    assert stats["counters"]["result_cache_hits"] == 0
    assert stats["counters"]["coalesced"] == 0
    # The split must not tax the bypass path: on the same box the
    # concurrent/serial ratio stays in the PR-4 ballpark (GIL-bound,
    # expected near or below 1x; 0.76x on the reference box).  The
    # bar is generous because absolute QPS is box-dependent — what it
    # catches is a policy/storage regression taxing every miss.
    if baseline and baseline.get("speedup"):
        assert speedup >= baseline["speedup"] * 0.5, {
            "speedup": speedup, "baseline": baseline["speedup"]}


def test_churn_qps_under_byte_pressure():
    """Sustained QPS while the byte budget forces constant eviction."""
    doc = build_corpus()
    stream = [QUERY_MIX[i % len(QUERY_MIX)] for i in range(N_REQUESTS)]

    catalog = Catalog()
    catalog.register("main", doc)
    # First measure the working set, then size the budget below it so
    # the mix can never fit at once: every round re-admits and evicts.
    probe = QueryService(catalog, workers=1, result_cache="16mb")
    for text in QUERY_MIX:
        probe.query(text)
    working_set = probe.stats()["result_cache"]["bytes"]
    probe.close()
    budget = max(1024, working_set // 2)

    service = QueryService(catalog, workers=WORKERS,
                           max_queue=max(64, N_REQUESTS),
                           result_cache={"max_bytes": budget})
    for text in QUERY_MIX:
        service.query(text)
    elapsed, results = drive(service, stream)
    stats = service.stats()["result_cache"]
    service.close()

    qps = len(stream) / elapsed
    hits = sum(1 for r in results if r.cached)
    merge_bench({"byte_pressure_churn": {
        "n_requests": len(stream),
        "working_set_bytes": working_set,
        "budget_bytes": budget,
        "qps": round(qps, 1),
        "cached_fraction": round(hits / len(results), 4),
        "evictions": stats["evictions"],
        "rejected": stats["rejected"],
        "storage_bytes": stats["bytes"],
    }})
    # The acceptance requirement: byte-budget eviction was actually
    # exercised, and accounting never overran the budget.
    assert stats["evictions"] > 0, stats
    assert stats["bytes"] <= stats["capacity_bytes"], stats
    assert qps > 0
