"""Table 3 reproduction for dataset d2 (see table3_common for the
shape contract).  Run `python -m repro.bench table3 --datasets d2`
for the rendered paper-layout table."""

import pytest

from table3_common import assert_shape, cases_for, run_benchmark_cell


@pytest.mark.parametrize("system,qid", cases_for("d2"))
def test_cell(benchmark, system, qid):
    run_benchmark_cell(benchmark, "d2", system, qid)


def test_shape(benchmark):
    """One round: the qualitative Table-3 claims for d2."""
    benchmark.pedantic(assert_shape, args=("d2",), rounds=1, iterations=1)
