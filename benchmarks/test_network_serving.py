"""Network serving under load: the PR-7 acceptance benchmark.

A load generator drives the TCP front end three ways and records the
results to ``BENCH_PR7.json`` (the server-smoke CI job uploads it):

* **closed-loop** — K client connections, each issuing requests
  back-to-back (offered load adapts to service speed, the classic
  think-time-zero closed system).  Reports sustained QPS and p50/p99
  end-to-end latency.
* **open-loop** — requests fired on a fixed arrival schedule
  regardless of completions (the arrival process does not slow down
  when the server does — the regime where queues explode).  Offered
  rate is set well above the closed-loop capacity.
* **overload behavior** — the point of adaptive admission: under
  open-loop overpressure the server must *shed* excess load with fast
  ``OVERLOADED`` rejections instead of queueing it, keeping the p99 of
  *served* requests bounded.  The test asserts both: rejections
  happened, and served p99 stayed within ``P99_BOUND_MS``.

``REPRO_NET_BENCH_QUICK=1`` shrinks the request counts for CI smoke
runs; the recorded JSON notes which mode produced it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.errors import ReproError, ServiceOverloadedError
from repro.serve import client as client_mod
from repro.serve.server import Server
from repro.serve.service import QueryService
from repro.xmlkit.tree import Document, DocumentBuilder

BENCH_PR7_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"
QUICK = os.environ.get("REPRO_NET_BENCH_QUICK", "") not in ("", "0")

CLIENTS = 4
CLOSED_REQUESTS = 60 if QUICK else 300        # per client
OPEN_REQUESTS = 150 if QUICK else 600         # total arrivals
#: Serving-side workers; admission shrinks to what they sustain.
WORKERS = 4
#: Bound asserted on the p99 of *served* requests under overload.
P99_BOUND_MS = 2_000.0

QUERY_MIX = (
    "//book/title",
    "//book[author]/title",
    "//shelf/book/author",
    "for $b in //book where $b/author return $b/title",
)


def build_corpus(shelves: int = 20, books: int = 40) -> Document:
    builder = DocumentBuilder()
    builder.start_element("library")
    serial = 0
    for s in range(shelves):
        builder.start_element("shelf", {"genre": f"g{s % 7}"})
        for _ in range(books):
            serial += 1
            builder.start_element("book", {"id": f"b{serial}"})
            builder.element("author", f"author-{serial % 211}")
            builder.element("title", f"title-{serial}")
            builder.element("price", str(serial % 97))
            builder.end_element()
        builder.end_element()
    builder.end_element()
    return builder.finish()


def merge_bench(update: dict) -> None:
    """Read-modify-write ``BENCH_PR7.json`` so the modes coexist."""
    payload: dict = {}
    if BENCH_PR7_PATH.exists():
        try:
            payload = json.loads(BENCH_PR7_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    payload["quick_mode"] = QUICK
    BENCH_PR7_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")


def quantile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class LoadStats:
    """Thread-safe accumulator for one load-generation run."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies_ms: list[float] = []
        self.shed = 0
        self.errors = 0
        self.items = 0

    def record(self, latency_ms: float, n_items: int) -> None:
        with self.lock:
            self.latencies_ms.append(latency_ms)
            self.items += n_items

    def record_shed(self) -> None:
        with self.lock:
            self.shed += 1

    def record_error(self) -> None:
        with self.lock:
            self.errors += 1

    def summary(self) -> dict:
        ordered = sorted(self.latencies_ms)
        return {
            "served": len(ordered),
            "shed": self.shed,
            "errors": self.errors,
            "latency_ms_p50": round(quantile(ordered, 0.50), 3)
            if ordered else None,
            "latency_ms_p99": round(quantile(ordered, 0.99), 3)
            if ordered else None,
        }


def closed_loop(server: Server, n_clients: int,
                requests_each: int) -> tuple[LoadStats, float]:
    """K connections, zero think time, back-to-back requests."""
    stats = LoadStats()

    def worker(seed: int) -> None:
        with client_mod.connect(*server.address) as cl:
            for i in range(requests_each):
                text = QUERY_MIX[(seed + i) % len(QUERY_MIX)]
                started = time.perf_counter()
                try:
                    result = cl.query(text, timeout_ms=60_000)
                except ServiceOverloadedError:
                    stats.record_shed()
                    continue
                stats.record((time.perf_counter() - started) * 1e3,
                             len(result))

    threads = [threading.Thread(target=worker, args=(k,))
               for k in range(n_clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return stats, time.perf_counter() - started


def open_loop(server: Server, n_requests: int, rate_qps: float,
              n_lanes: int = 16) -> tuple[LoadStats, float]:
    """Fixed arrival schedule, independent of completions.

    ``n_lanes`` connections take arrivals round-robin; a lane that is
    still waiting on a response simply fires its next arrival late,
    which under overload only *understates* the pressure — the shed
    assertion is conservative.
    """
    stats = LoadStats()
    interval = 1.0 / rate_qps
    epoch = time.perf_counter() + 0.05

    def lane(lane_id: int) -> None:
        with client_mod.connect(*server.address) as cl:
            for n in range(lane_id, n_requests, n_lanes):
                due = epoch + n * interval
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                text = QUERY_MIX[n % len(QUERY_MIX)]
                started = time.perf_counter()
                try:
                    result = cl.query(text, timeout_ms=60_000)
                except ServiceOverloadedError:
                    stats.record_shed()
                    continue
                except ReproError:
                    stats.record_error()
                    continue
                stats.record((time.perf_counter() - started) * 1e3,
                             len(result))

    threads = [threading.Thread(target=lane, args=(k,))
               for k in range(n_lanes)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return stats, time.perf_counter() - started


def test_closed_loop_throughput():
    service = QueryService(build_corpus(), workers=WORKERS,
                           result_cache={"max_entries": 64})
    try:
        with Server(service, target_ms=100.0) as server:
            # Warm plans out of the timed region.
            with client_mod.connect(*server.address) as cl:
                for text in QUERY_MIX:
                    cl.query(text)
            stats, elapsed = closed_loop(server, CLIENTS, CLOSED_REQUESTS)
            admission = server.admission.stats()
    finally:
        service.close()

    summary = stats.summary()
    total = CLIENTS * CLOSED_REQUESTS
    qps = summary["served"] / elapsed
    merge_bench({"closed_loop": {
        "clients": CLIENTS, "requests": total, "qps": round(qps, 1),
        **summary, "admission": admission,
    }})
    # Closed-loop offered load tracks capacity: (nearly) nothing shed,
    # everything answered.
    assert summary["served"] + summary["shed"] == total
    assert summary["errors"] == 0
    assert summary["served"] >= total * 0.9
    assert qps > 0


def test_open_loop_overload_sheds_and_bounds_p99():
    """The tentpole claim: overpressure is shed, served p99 bounded."""
    service = QueryService(build_corpus(), workers=WORKERS,
                           result_cache=0)          # every request runs
    try:
        # A tight latency target and a small window ceiling make the
        # admission controller the binding constraint, deterministically.
        with Server(service, target_ms=20.0, start_window=2,
                    max_window=8) as server:
            with client_mod.connect(*server.address) as cl:
                for text in QUERY_MIX:
                    cl.query(text)
                # Measure single-stream capacity to set the overpressure
                # rate: offer several times what one stream sustains.
                probe_started = time.perf_counter()
                probe_n = 20
                for i in range(probe_n):
                    cl.query(QUERY_MIX[i % len(QUERY_MIX)])
                base_qps = probe_n / (time.perf_counter() - probe_started)
            rate = max(50.0, base_qps * 8)
            stats, elapsed = open_loop(server, OPEN_REQUESTS, rate)
            admission = server.admission.stats()
    finally:
        service.close()

    summary = stats.summary()
    merge_bench({"open_loop_overload": {
        "requests": OPEN_REQUESTS,
        "offered_qps": round(rate, 1),
        "achieved_qps": round(summary["served"] / elapsed, 1),
        **summary, "admission": admission,
    }})
    # Pressure was real and the server shed rather than queued:
    assert summary["shed"] > 0, "open-loop overpressure never shed load"
    assert admission["rejected"] == summary["shed"]
    # ...and what it did serve, it served with bounded tail latency.
    assert summary["served"] > 0
    assert summary["latency_ms_p99"] <= P99_BOUND_MS, (
        f"served p99 {summary['latency_ms_p99']}ms exceeds "
        f"{P99_BOUND_MS}ms under overload — load queued instead of shed")
