"""Shared configuration for the benchmark suite.

``BENCH_SCALE`` controls dataset size (relative to the generators'
base element counts); override with ``REPRO_BENCH_SCALE=1.0`` for a
longer, higher-resolution run.  The paper's datasets are ~100x larger
than our defaults; all shape assertions are scale-invariant.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import recording
from repro.bench.harness import PreparedDataset, prepare_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Machine-readable dump of every run_cell measurement made by the
#: benchmark session (query, strategy, wall ms, counters snapshot).
BENCH_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"


@pytest.fixture(scope="session")
def scale() -> float:
    return BENCH_SCALE


def dataset(name: str) -> PreparedDataset:
    return prepare_dataset(name, BENCH_SCALE)


def pytest_sessionfinish(session, exitstatus):
    """Dump the session's benchmark records to ``BENCH_PR2.json``.

    pytest-benchmark replays each cell many times while timing; only
    the latest record per (dataset, query, strategy, system) cell is
    kept, so the artifact stays one row per table cell.
    """
    if not recording.RECORDS:
        return
    total = len(recording.RECORDS)
    cells = {(r.get("dataset"), r["query"], r["strategy"], r.get("system"),
              r.get("mode")): r
             for r in recording.RECORDS}
    recording.RECORDS[:] = list(cells.values())
    recording.write_json(BENCH_RECORD_PATH, meta={
        "scale": BENCH_SCALE,
        "n_cells": len(recording.RECORDS),
        "n_runs": total,
        "exit_status": int(exitstatus),
    })
