"""Shared configuration for the benchmark suite.

``BENCH_SCALE`` controls dataset size (relative to the generators'
base element counts); override with ``REPRO_BENCH_SCALE=1.0`` for a
longer, higher-resolution run.  The paper's datasets are ~100x larger
than our defaults; all shape assertions are scale-invariant.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import PreparedDataset, prepare_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def scale() -> float:
    return BENCH_SCALE


def dataset(name: str) -> PreparedDataset:
    return prepare_dataset(name, BENCH_SCALE)
