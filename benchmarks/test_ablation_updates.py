"""Ablation A5: the update problem of the join-based approach (Section 2.1).

The paper: "if a single element is inserted or deleted, the encodings
of its subtree or all following nodes in the document may need to be
recomputed" — and the tag indexes over them rebuilt — whereas the
navigational/hybrid approach discovers structure dynamically and needs
no maintenance.

Measured here:

* relabeling cost grows with how early in the document the update
  lands (tail-length proportional);
* after an update, the join-based pipeline (index rebuild + TwigStack)
  pays the maintenance cost while the scan-based pipeline answers the
  same query with zero maintenance;
* both pipelines return identical results after the update.
"""

import pytest

from repro.engine import Engine
from repro.xmlkit import parse, serialize
from repro.xmlkit.storage import ScanCounters
from repro.xmlkit.update import DocumentUpdater

from conftest import dataset


def fresh_copy(name: str):
    prepared = dataset(name)
    return parse(serialize(prepared.doc.root))


def test_relabel_cost_proportional_to_tail():
    doc = fresh_copy("d2")
    addresses = doc.elements_by_tag("address")
    early_target = addresses[0]
    late_target = addresses[-1]

    early_doc = parse(serialize(doc.root))
    late_doc = parse(serialize(doc.root))
    fragment = parse("<country_id>CA</country_id>").root

    early = DocumentUpdater(early_doc).insert_subtree(
        early_doc.elements_by_tag("address")[0], fragment)
    late = DocumentUpdater(late_doc).insert_subtree(
        late_doc.elements_by_tag("address")[-1], fragment)

    assert early.nodes_relabeled > 10 * max(1, late.nodes_relabeled)
    assert early.nodes_relabeled > 0.9 * len(early_doc.nodes)
    _ = early_target, late_target


def test_join_pipeline_pays_maintenance_scan_pipeline_does_not():
    doc = fresh_copy("d3")
    engine = Engine(doc)
    query = "//item//street_address"

    # Warm both pipelines.
    reference = engine.query(query, strategy="pipelined").serialize()
    assert engine.query(query, strategy="twigstack").serialize() == reference

    updater = DocumentUpdater(doc)
    updater.register_index(engine.index)
    report = updater.insert_subtree(
        doc.elements_by_tag("item")[0],
        parse("<street_address>1 new way</street_address>").root)
    assert report.indexes_invalidated == 1

    # The scan-based pipeline needs no maintenance: one scan, right answer.
    counters = ScanCounters()
    scan_result = engine.query(query, strategy="pipelined", counters=counters)
    assert counters.scans_started == 1

    # The join-based pipeline must rebuild its index first (charged as
    # a full index build), then agrees.
    engine.index.build()
    ts_result = engine.query(query, strategy="twigstack")
    assert ts_result.serialize() == scan_result.serialize()
    assert len(ts_result) == len(scan_result)


@pytest.mark.parametrize("position", ["early", "late"])
def test_update_timing(benchmark, position):
    def run():
        doc = fresh_copy("d2")
        updater = DocumentUpdater(doc)
        targets = doc.elements_by_tag("address")
        target = targets[0] if position == "early" else targets[-1]
        report = updater.insert_subtree(
            target, parse("<country_id>CA</country_id>").root)
        return report.nodes_relabeled

    relabeled = benchmark(run)
    benchmark.extra_info["nodes_relabeled"] = relabeled
