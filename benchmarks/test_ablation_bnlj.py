"""Ablation A3: bounded vs naive nested-loop join (Section 4.3).

The BNLJ optimization piggybacks each outer match's subtree range so
the inner NoK re-scans only that range.  The claim: BNLJ's scan I/O is
a small multiple of one document pass, while the naive join scans the
whole document once per outer match.
"""

import pytest

from repro.pattern import build_from_path, decompose
from repro.physical import (
    NoKMatcher,
    bounded_nested_loop_join,
    left_projection,
    naive_nested_loop_join,
)
from repro.xmlkit.storage import ScanCounters
from repro.xpath import parse_xpath

from conftest import dataset

CASES = [
    ("d2", "//address//zip_code"),
    ("d3", "//item//street_address"),
    ("d5", "//proceedings//editor"),
    ("d1", "//b1//c2"),
]


def join_inputs(prepared, query):
    tree = build_from_path(parse_xpath(query))
    dec = decompose(tree)
    edge = next(e for e in dec.inter_edges if e.parent.name != "#root")
    left = NoKMatcher(dec.noks[edge.nok_from], prepared.doc).matches()
    right_nok = dec.noks[edge.nok_to]
    right = NoKMatcher(right_nok, prepared.doc).matches()
    return left_projection(left, edge), right, right_nok, edge


@pytest.mark.parametrize("name,query", CASES)
def test_bnlj_beats_naive_io(benchmark, name, query):
    def check(name=name, query=query):
        prepared = dataset(name)
        projection, right, right_nok, edge = join_inputs(prepared, query)
        n_outer = len(projection)
        assert n_outer > 1

        bounded = ScanCounters()
        bnlj = bounded_nested_loop_join(projection, right_nok, prepared.doc,
                                        edge, bounded)
        naive = ScanCounters()
        nl = naive_nested_loop_join(projection, right_nok, prepared.doc,
                                    edge, naive)

        # identical output
        assert {k: sorted(e.node.nid for e in v) for k, v in bnlj.adjacency.items()} \
            == {k: sorted(e.node.nid for e in v) for k, v in nl.adjacency.items()}

        # naive scans the whole document per outer node.
        assert naive.nodes_scanned == n_outer * len(prepared.doc.nodes)
        # BNLJ touches only outer subtrees: strictly (and usually vastly) less.
        assert bounded.nodes_scanned < naive.nodes_scanned
        ratio = naive.nodes_scanned / max(1, bounded.nodes_scanned)
        assert ratio > 2.0



    benchmark.pedantic(check, rounds=1, iterations=1)

@pytest.mark.parametrize("variant", ["bnlj", "naive"])
def test_nested_loop_timing(benchmark, variant):
    prepared = dataset("d2")
    projection, right, right_nok, edge = join_inputs(
        prepared, "//address//zip_code")
    join = bounded_nested_loop_join if variant == "bnlj" \
        else naive_nested_loop_join

    def run():
        counters = ScanCounters()
        join(projection, right_nok, prepared.doc, edge, counters)
        return counters.nodes_scanned

    scanned = benchmark(run)
    benchmark.extra_info["nodes_scanned"] = scanned
