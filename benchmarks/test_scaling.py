"""Scaling series: does the Table-3 shape survive dataset growth?

The paper runs at one (large) size per dataset; since our reproduction
is scaled down ~100x, this series demonstrates that the qualitative
conclusions are not artifacts of the chosen scale: per-query work for
every system grows linearly-ish with document size, so the system
ordering is scale-stable.  (This is the "figure" the paper never had —
each benchmark's ``extra_info`` carries the series.)
"""

import pytest

from repro.bench.harness import prepare_dataset, run_cell

SCALES = [0.1, 0.2, 0.4]


def series(name: str, qid: str, system: str) -> list[tuple[int, int]]:
    """(document nodes, nodes scanned) across the scale sweep."""
    out = []
    for scale in SCALES:
        prepared = prepare_dataset(name, scale)
        query = prepared.spec.query(qid)
        cell = run_cell(prepared, query.text, system)
        scanned = (cell.counters["nodes_scanned"]
                   if not cell.dnf else -1)
        out.append((len(prepared.doc.nodes), scanned))
    return out


@pytest.mark.parametrize("name,system", [
    ("d2", "PL"), ("d2", "TS"), ("d2", "XH"),
    ("d3", "PL"), ("d3", "TS"),
    ("d1", "TS"), ("d1", "XH"),
])
def test_work_scales_linearly(benchmark, name, system):
    def check():
        points = series(name, "Q4", system)
        assert all(scanned >= 0 for _, scanned in points)
        # Work per node stays within a 3x band across a 4x size sweep:
        # no super-linear blowup for the finishing systems.
        ratios = [scanned / nodes for nodes, scanned in points]
        assert max(ratios) <= 3.0 * min(ratios) + 1e-9
        return points

    points = benchmark.pedantic(check, rounds=1, iterations=1)
    benchmark.extra_info["series"] = points


def test_system_ordering_stable_across_scales(benchmark):
    """TS < PL <= XH on I/O at every scale (d2/d3, all queries)."""

    def check():
        for scale in SCALES:
            for name in ("d2", "d3"):
                prepared = prepare_dataset(name, scale)
                for query in prepared.spec.queries:
                    ts = run_cell(prepared, query.text, "TS") \
                        .counters["nodes_scanned"]
                    pl = run_cell(prepared, query.text, "PL") \
                        .counters["nodes_scanned"]
                    xh = run_cell(prepared, query.text, "XH") \
                        .counters["nodes_scanned"]
                    assert ts < xh, (name, query.qid, scale)
                    assert pl <= xh, (name, query.qid, scale)

    benchmark.pedantic(check, rounds=1, iterations=1)
