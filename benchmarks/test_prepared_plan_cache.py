"""Warm-vs-cold serving benchmark: the plan cache and prepared queries.

The serving-path claim behind PR 2: for repeated traffic, per-call
compilation (parse → BlossomTree → NoK decomposition → optimizer) is
pure overhead — a warm plan cache or a prepared query removes it.
This suite measures one table2 workload query (d3 Q2, the
high-selectivity branching twig over the catalog dataset) three ways:

* **cold** — the cache is invalidated before every call, so each call
  pays the full compile pipeline (the pre-PR2 behaviour);
* **warm** — repeated ``query(text)`` hits the plan cache;
* **prepared** — ``prepare()`` once, ``execute()`` in the loop.

Recorded to ``BENCH_PR2.json`` with mode labels; the acceptance
criterion (warm ≥ 2× faster than cold) is asserted directly.  The
document is deliberately small: the criterion is about serving-path
*overhead*, which is scale-independent in absolute terms and dominates
exactly in the high-QPS / modest-document regime the ROADMAP targets.
"""

from __future__ import annotations

import time

from repro.bench.harness import prepare_dataset
from repro.bench.recording import record_run
from repro.engine.session import Engine
from repro.xmlkit.storage import ScanCounters

#: d3 Q2 (Table 2 "hb"): a branching twig with two predicates.
DATASET = "d3"
QUERY = "//item[attributes//length][//subtitle]//isbn"
#: Small scale: the compile/execute ratio of a serving workload whose
#: documents are modest but whose query rate is high.
SCALE = 0.01
ROUNDS = 80
REPEATS = 5


def _time_calls(call, rounds: int) -> float:
    """Best-of-REPEATS total wall seconds for ``rounds`` calls."""
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(rounds):
            call()
        best = min(best, time.perf_counter() - started)
    return best


def test_warm_cache_at_least_2x_faster_than_cold():
    prepared_ds = prepare_dataset(DATASET, SCALE)
    engine = Engine(prepared_ds.doc)
    engine.index.build()
    engine.stats_fingerprint()     # pre-compute stats outside the loops

    def cold_call():
        engine.plan_cache.invalidate("manual")
        engine.query(QUERY)

    def warm_call():
        engine.query(QUERY)

    prepared = engine.prepare(QUERY)

    def prepared_call():
        prepared.execute()

    warm_call()                    # populate the cache before timing
    cold_s = _time_calls(cold_call, ROUNDS)
    warm_s = _time_calls(warm_call, ROUNDS)
    prepared_s = _time_calls(prepared_call, ROUNDS)

    counters = ScanCounters()
    engine.query(QUERY, counters=counters)
    snapshot = counters.snapshot()
    per_call = lambda total: total / ROUNDS * 1e3  # noqa: E731

    speedup = cold_s / warm_s
    record_run(QUERY, "auto", per_call(cold_s), snapshot,
               dataset=DATASET, system="PL", mode="cold",
               rounds=ROUNDS, scale=SCALE)
    record_run(QUERY, "auto", per_call(warm_s), snapshot,
               dataset=DATASET, system="PL", mode="warm",
               rounds=ROUNDS, scale=SCALE, speedup_vs_cold=round(speedup, 2))
    record_run(QUERY, "auto", per_call(prepared_s), snapshot,
               dataset=DATASET, system="PL", mode="prepared",
               rounds=ROUNDS, scale=SCALE,
               speedup_vs_cold=round(cold_s / prepared_s, 2))

    assert speedup >= 2.0, (
        f"warm cache {per_call(warm_s):.3f} ms/call vs cold "
        f"{per_call(cold_s):.3f} ms/call — only {speedup:.2f}x")
    # Prepared execution skips even the cache probe; it must not be
    # slower than the warm path by more than noise.
    assert prepared_s <= warm_s * 1.25


def test_parameterized_prepared_matches_and_amortizes():
    """A FLWOR with an external $parameter: one compile, many bindings."""
    prepared_ds = prepare_dataset("d2", SCALE)
    engine = Engine(prepared_ds.doc)
    flwor = ("for $a in //address where $a//zip_code/text() != $zip "
             "return $a//name_of_city")
    plan = engine.prepare(flwor)
    assert plan.parameters == {"zip"}

    started = time.perf_counter()
    sizes = [len(plan.execute(params={"zip": str(z)}))
             for z in ("10000", "99999")]
    elapsed_ms = (time.perf_counter() - started) * 1e3 / len(sizes)
    # Different bindings reuse one plan; results match fresh compiles.
    for z, size in zip(("10000", "99999"), sizes, strict=True):
        inlined = flwor.replace("$zip", f"'{z}'")
        assert size == len(Engine(prepared_ds.doc).query(inlined))
    record_run(flwor, "auto", elapsed_ms, {},
               dataset="d2", system="PL", mode="prepared-bindings",
               scale=SCALE)
