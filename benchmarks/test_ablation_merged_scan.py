"""Ablation A1: merged-NoK single scan vs separate scans (Section 4.2).

The claim: when k NoK operators read the same document, merging them
into one combined operator reduces scan I/O from k passes to one.  We
assert both the exact I/O ratio and identical match output, and
benchmark the two evaluation modes.
"""

import pytest

from repro.pattern import build_from_path, decompose
from repro.physical import NoKMatcher, merged_scan
from repro.xmlkit.storage import ScanCounters
from repro.xpath import parse_xpath

from conftest import dataset

#: (dataset, query) pairs whose decomposition yields >= 2 element NoKs.
CASES = [
    ("d3", "//item//street_address"),
    ("d3", "//author[//first_name][//last_name]/name/*"),
    ("d5", "//proceedings[//editor]"),
    ("d2", "//address[//name_of_state][//zip_code]//street_address"),
]


def element_noks(query):
    tree = build_from_path(parse_xpath(query))
    dec = decompose(tree)
    return [n for n in dec.noks if n.root.name != "#root"]


@pytest.mark.parametrize("name,query", CASES)
def test_merged_scan_halves_io(benchmark, name, query):
    def check(name=name, query=query):
        prepared = dataset(name)
        noks = element_noks(query)
        assert len(noks) >= 2

        separate = ScanCounters()
        separate_results = {}
        for nok in noks:
            separate_results[nok.nok_id] = NoKMatcher(
                nok, prepared.doc, separate).matches()

        together = ScanCounters()
        merged_results = merged_scan(noks, prepared.doc, together)

        # Exact I/O ratio: k scans vs 1 scan.
        assert separate.nodes_scanned == len(noks) * together.nodes_scanned
        assert together.scans_started == 1
        assert separate.scans_started == len(noks)

        # Identical output.
        for nok in noks:
            assert [m.node.nid for m in merged_results[nok.nok_id]] == \
                [m.node.nid for m in separate_results[nok.nok_id]]



    benchmark.pedantic(check, rounds=1, iterations=1)

@pytest.mark.parametrize("mode", ["separate", "merged"])
def test_scan_mode_timing(benchmark, mode):
    prepared = dataset("d3")
    noks = element_noks("//item//street_address")

    if mode == "separate":
        def run():
            counters = ScanCounters()
            for nok in noks:
                NoKMatcher(nok, prepared.doc, counters).matches()
            return counters.nodes_scanned
    else:
        def run():
            counters = ScanCounters()
            merged_scan(noks, prepared.doc, counters)
            return counters.nodes_scanned

    scanned = benchmark(run)
    benchmark.extra_info["nodes_scanned"] = scanned
