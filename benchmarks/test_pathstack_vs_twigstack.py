"""Ablation A7: PathStack vs TwigStack on chain queries (reference [7]).

Both holistic joins read the same index streams; on pure //-chains
(the "c" categories of Table 2) PathStack needs no path-merge phase,
so it should match TwigStack's I/O with simpler bookkeeping and at
most comparable time.
"""

import pytest

from repro.pattern import build_from_path
from repro.physical import PathStackOperator, TwigStackOperator, chain_supported
from repro.xmlkit.storage import ScanCounters
from repro.xpath import parse_xpath

from conftest import dataset

CHAINS = [
    ("d1", "//b1//c2//b1"),
    ("d1", "//a//c2//c3"),
    ("d4", "//VP//NP//NN"),
    ("d4", "//S//VP//NP"),
    ("d5", "//phdthesis//author"),
]


@pytest.mark.parametrize("name,query", CHAINS)
def test_results_identical(name, query):
    prepared = dataset(name)
    tree = build_from_path(parse_xpath(query))
    assert chain_supported(tree)
    output = tree.var_vertex["#result"]

    path_counters = ScanCounters()
    path_nodes = PathStackOperator(tree, prepared.doc,
                                   counters=path_counters).matching_nodes(output)

    tree2 = build_from_path(parse_xpath(query))
    twig_counters = ScanCounters()
    twig_nodes = TwigStackOperator(tree2, prepared.doc,
                                   counters=twig_counters).matching_nodes(
        tree2.var_vertex["#result"])

    assert [n.nid for n in path_nodes] == [n.nid for n in twig_nodes]
    # Identical index I/O: both read exactly the tag streams.
    assert path_counters.nodes_scanned == twig_counters.nodes_scanned


@pytest.mark.parametrize("operator", ["pathstack", "twigstack"])
@pytest.mark.parametrize("name,query", CHAINS[:3])
def test_chain_join_timing(benchmark, operator, name, query):
    prepared = dataset(name)

    def run():
        tree = build_from_path(parse_xpath(query))
        cls = PathStackOperator if operator == "pathstack" else TwigStackOperator
        op = cls(tree, prepared.doc, index=prepared.engine.index)
        return len(op.matching_nodes(tree.var_vertex["#result"]))

    count = benchmark(run)
    benchmark.extra_info["n_results"] = count
