"""Ablation A4: index sensitivity to selectivity (Section 5.2's analysis).

The paper's explanation of the PL/TS crossover: "Since TwigStack
requires tag-name indexes, it is faster when the tag constraints in the
query are selective.  On the other hand, pipelined join ... resembles a
sequential scan".  We verify the mechanism on the non-recursive
datasets: TS's I/O *grows* with query selectivity class (h → l) while
PL's I/O is flat (always exactly one scan), so TS's advantage shrinks
as selectivity drops.
"""

import pytest

from repro.bench.harness import run_cell

from conftest import dataset

NON_RECURSIVE = ["d2", "d3", "d5"]


@pytest.mark.parametrize("name", NON_RECURSIVE)
def test_ts_io_grows_with_result_size_pl_stays_flat(benchmark, name):
    benchmark.pedantic(_check_io_shape, args=(name,), rounds=1, iterations=1)


def _check_io_shape(name):
    prepared = dataset(name)
    ts_io = {}
    pl_io = {}
    for query in prepared.spec.queries:
        ts_io[query.qid] = run_cell(prepared, query.text, "TS") \
            .counters["nodes_scanned"]
        pl_io[query.qid] = run_cell(prepared, query.text, "PL") \
            .counters["nodes_scanned"]

    # PL: identical I/O for every query (one scan).
    assert len(set(pl_io.values())) == 1

    if name == "d5":
        # d5's queries carry no selectivity categories (the paper's
        # Appendix assigns none): stream sizes are driven by tag
        # frequency, not category, so only the PL-flatness claim applies.
        return

    # TS: the low-selectivity queries read more index entries than the
    # high-selectivity ones.
    high = max(ts_io["Q1"], ts_io["Q2"])
    low = max(ts_io["Q5"], ts_io["Q6"])
    assert low > high

    # The TS advantage (PL I/O / TS I/O) shrinks from h to l.
    adv_high = pl_io["Q1"] / max(1, ts_io["Q1"])
    adv_low = pl_io["Q5"] / max(1, ts_io["Q5"])
    assert adv_high > adv_low


@pytest.mark.parametrize("name,system",
                         [(n, s) for n in NON_RECURSIVE for s in ("TS", "PL")])
def test_selectivity_sweep_timing(benchmark, name, system):
    """Wall-clock for the full h->l sweep under one system."""
    prepared = dataset(name)
    queries = [q.text for q in prepared.spec.queries]

    def sweep():
        return [run_cell(prepared, q, system).seconds for q in queries]

    seconds = benchmark(sweep)
    benchmark.extra_info["per_query_seconds"] = [round(s or -1, 5)
                                                 for s in seconds]
