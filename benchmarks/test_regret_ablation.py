"""Regret ablation: feedback-driven strategy selection vs static policies.

The PR-6 acceptance benchmark.  Three policies run the same query mix:

* **best-static** — the single fixed strategy with the lowest measured
  mean per query (an oracle no online policy can beat);
* **worst-static** — the highest measured mean (what a wrong static
  rule costs);
* **feedback** — ``strategy="auto"`` with the runtime statistics
  feedback loop enabled, paying real probe executions before settling.

Regret is computed over *decision costs*: every round is priced at the
strategy's mean latency as measured by the online engine itself, so
the ablation isolates decision quality from cross-engine scheduler
drift (a dedicated static sweep is reported alongside as context — on
a noisy box the two can disagree about near-ties, which is exactly the
regime where the decisions barely matter).  The acceptance bar: the
feedback policy's total must land within 10% of best-static — probe
executions of the losing arm are the only thing it can lose, and they
amortize over the horizon.

A second part measures the recording overhead itself: a cold
``query()`` (fresh engine, plan-cache miss) with ``record_stats=True``
must cost at most 3% over ``record_stats=False`` (best-of-N on both
sides).

Artifacts at the repo root (the ``stats-smoke`` CI job uploads them):
``BENCH_PR6.json`` (per-query policy table, regret, overhead) and
``BENCH_PR6_STATS.json`` (the feedback engine's statistics snapshot).
``REPRO_REGRET_QUICK=1`` shrinks the corpus and the horizon for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.engine.plancache import normalize_query_text
from repro.engine.session import Engine
from repro.xmlkit.tree import Document, DocumentBuilder

BENCH_PR6_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
BENCH_PR6_STATS_PATH = BENCH_PR6_PATH.with_name("BENCH_PR6_STATS.json")

QUICK = os.environ.get("REPRO_REGRET_QUICK", "") not in ("", "0")
N_BOOKS = 900 if QUICK else 2400
STATIC_ROUNDS = 4 if QUICK else 8        # samples per (query, strategy) mean
FEEDBACK_ROUNDS = 16 if QUICK else 24    # the online policy's horizon
OVERHEAD_REPEATS = 7 if QUICK else 9

#: Table-3-style bare ``//``-twig mix: every query here is runnable
#: under both the merge-join choice and TwigStack, so static policies
#: genuinely differ.
PATTERN_QUERIES = ("//book[author]/title", "//book//last", "//book/price")
PATTERN_STRATEGIES = ("pipelined", "twigstack")

#: The BENCH_PR5 shape: a document past the parallel-upgrade threshold
#: where the partition hand-off may or may not pay for itself.
PARALLEL_QUERY = "//book/title"
PARALLEL_STRATEGIES = ("parallel", "pipelined")
PARALLEL_EXECUTOR = "threads:4"


def build_corpus(n_books: int = N_BOOKS) -> Document:
    builder = DocumentBuilder()
    builder.start_element("library")
    for i in range(n_books):
        builder.start_element("book", {"id": f"b{i}"})
        builder.start_element("author")
        builder.element("first", f"f{i % 13}")
        builder.element("last", f"l{i % 7}")
        builder.end_element()
        builder.element("title", f"title-{i}")
        builder.element("price", str(i % 97))
        builder.end_element()
    builder.end_element()
    return builder.finish()


def best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def static_means(doc: Document, queries, strategies,
                 executor: str | None) -> dict[tuple[str, str], float]:
    """Measured mean ms per (query, strategy) from a dedicated sweep."""
    means: dict[tuple[str, str], float] = {}
    for strategy in strategies:
        engine = Engine(doc)
        engine.index.build()
        for query in queries:
            for _ in range(STATIC_ROUNDS):
                engine.query(query, strategy=strategy, executor=executor)
            entry = engine.stats_store.get(
                normalize_query_text(query), strategy,
                engine.stats_fingerprint(),
                executor if executor is not None else "serial")
            assert entry is not None and entry.successes == STATIC_ROUNDS
            means[(query, strategy)] = entry.mean_ms
    return means


def run_feedback_policy(doc: Document, queries,
                        executor: str | None) -> tuple[Engine, dict]:
    """Run the online policy; returns the engine and its choice log."""
    engine = Engine(doc, feedback=True)
    engine.index.build()
    choices: dict[str, list[str]] = {query: [] for query in queries}
    for _ in range(FEEDBACK_ROUNDS):
        for query in queries:
            engine.query(query, executor=executor)
            choices[query].append(engine._last_strategy)
    return engine, choices


def regret_rows(engine: Engine, sweep_means, choices, strategies,
                executor: str | None) -> tuple[list[dict], dict]:
    """Per-query policy costs (decision-priced) and the aggregate."""
    rows = []
    totals = {"feedback_ms": 0.0, "best_static_ms": 0.0,
              "worst_static_ms": 0.0}
    fingerprint = engine.stats_fingerprint()
    for query, chosen in choices.items():
        arms = engine.stats_store.arms(
            normalize_query_text(query), fingerprint,
            executor if executor is not None else "serial")
        online = {s: arm.mean_ms for s, arm in arms.items()
                  if arm.successes}
        assert set(chosen) <= set(online)
        best = min(online.values())
        worst = max(online.values())
        feedback_cost = sum(online[s] for s in chosen)
        rows.append({
            "query": query,
            "online_means_ms": {s: round(v, 3) for s, v in online.items()},
            "sweep_means_ms": {s: round(sweep_means[(query, s)], 3)
                               for s in strategies},
            "best_static": min(online, key=online.get),
            "settled": chosen[-1],
            "probe_rounds": sum(1 for s in chosen if s != chosen[-1]),
            "feedback_ms": round(feedback_cost, 3),
            "best_static_ms": round(best * len(chosen), 3),
            "worst_static_ms": round(worst * len(chosen), 3),
        })
        totals["feedback_ms"] += feedback_cost
        totals["best_static_ms"] += best * len(chosen)
        totals["worst_static_ms"] += worst * len(chosen)
    return rows, totals


def test_feedback_regret_within_10pct_and_overhead_within_3pct():
    doc = build_corpus()
    assert len(doc.nodes) >= 4_096       # the parallel upgrade must fire

    # -- pattern-query phase: merge join vs TwigStack ------------------
    means = static_means(doc, PATTERN_QUERIES, PATTERN_STRATEGIES, None)
    engine, choices = run_feedback_policy(doc, PATTERN_QUERIES, None)
    rows, totals = regret_rows(engine, means, choices,
                               PATTERN_STRATEGIES, None)

    # -- parallel phase: partition-parallel vs serial merged scan ------
    par_means = static_means(doc, (PARALLEL_QUERY,), PARALLEL_STRATEGIES,
                             PARALLEL_EXECUTOR)
    par_engine, par_choices = run_feedback_policy(doc, (PARALLEL_QUERY,),
                                                  PARALLEL_EXECUTOR)
    par_rows, par_totals = regret_rows(par_engine, par_means, par_choices,
                                       PARALLEL_STRATEGIES, PARALLEL_EXECUTOR)
    rows.extend(par_rows)
    for key, value in par_totals.items():
        totals[key] += value

    regret_pct = ((totals["feedback_ms"] - totals["best_static_ms"])
                  / totals["best_static_ms"] * 100.0)
    savings_vs_worst_pct = ((totals["worst_static_ms"] - totals["feedback_ms"])
                            / totals["worst_static_ms"] * 100.0)

    # Every feedback run settled (the explore phase is over well before
    # the horizon ends) and settled on the measured best arm.
    for row in rows:
        assert row["probe_rounds"] < FEEDBACK_ROUNDS
        assert row["settled"] in row["online_means_ms"]

    # -- recording overhead on the cold path ---------------------------
    overhead_doc = build_corpus(min(N_BOOKS, 1200))

    def cold_query(record_stats: bool) -> None:
        Engine(overhead_doc,
               record_stats=record_stats).query("//book[author]/title")

    on_s = best_of(OVERHEAD_REPEATS, lambda: cold_query(True))
    off_s = best_of(OVERHEAD_REPEATS, lambda: cold_query(False))
    overhead_pct = (on_s - off_s) / off_s * 100.0

    payload = {
        "benchmark": "feedback_regret_ablation",
        "quick": QUICK,
        "n_books": N_BOOKS,
        "n_nodes": len(doc.nodes),
        "static_rounds": STATIC_ROUNDS,
        "feedback_rounds": FEEDBACK_ROUNDS,
        "queries": rows,
        "feedback_ms": round(totals["feedback_ms"], 3),
        "best_static_ms": round(totals["best_static_ms"], 3),
        "worst_static_ms": round(totals["worst_static_ms"], 3),
        "regret_pct": round(regret_pct, 2),
        "savings_vs_worst_pct": round(savings_vs_worst_pct, 2),
        "demotions": (len(engine.stats_store.demotions)
                      + len(par_engine.stats_store.demotions)),
        "recording_overhead": {
            "repeats": OVERHEAD_REPEATS,
            "record_on_ms": round(on_s * 1e3, 3),
            "record_off_ms": round(off_s * 1e3, 3),
            "overhead_pct": round(overhead_pct, 2),
        },
    }
    BENCH_PR6_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")
    snapshot = {
        "pattern_phase": engine.stats_store.snapshot(top=10),
        "parallel_phase": par_engine.stats_store.snapshot(top=10),
    }
    BENCH_PR6_STATS_PATH.write_text(json.dumps(snapshot, indent=2) + "\n",
                                    encoding="utf-8")

    assert regret_pct <= 10.0, payload
    assert overhead_pct <= 3.0, payload["recording_overhead"]
