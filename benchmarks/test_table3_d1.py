"""Table 3 reproduction for dataset d1 (see table3_common for the
shape contract).  Run `python -m repro.bench table3 --datasets d1`
for the rendered paper-layout table."""

import pytest

from table3_common import assert_shape, cases_for, run_benchmark_cell


@pytest.mark.parametrize("system,qid", cases_for("d1"))
def test_cell(benchmark, system, qid):
    run_benchmark_cell(benchmark, "d1", system, qid)


def test_shape(benchmark):
    """One round: the qualitative Table-3 claims for d1."""
    benchmark.pedantic(assert_shape, args=("d1",), rounds=1, iterations=1)
