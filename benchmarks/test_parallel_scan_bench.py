"""Partition-parallel scan benchmark: serial vs parallel merged scans.

The PR-5 acceptance benchmark, in two parts:

* **degenerate-cost guard** — ``parallel_merged_scan`` handed a single
  partition must delegate to the serial scan, so its wall time stays
  within 5% of calling :func:`merged_scan` directly (best-of-N to keep
  the comparison scheduler-honest);
* **recorded sweep** — the same query at parallelism 1/2/4 over one
  large corpus, results asserted bit-identical to serial, timings
  written to ``BENCH_PR5.json`` at the repo root (the parallel-smoke CI
  job uploads it as an artifact).  Python threads share the GIL, so the
  sweep documents the overhead curve rather than promising a speedup.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.pattern import build_from_path, decompose
from repro.physical import merged_scan
from repro.physical.parallel_scan import parallel_merged_scan, shared_scan_executor
from repro.xmlkit.partition import partition_document
from repro.xmlkit.tree import Document, DocumentBuilder
from repro.xpath import parse_xpath

BENCH_PR5_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
REPEATS = int(os.environ.get("REPRO_PARALLEL_BENCH_REPEATS", "5"))
N_BOOKS = int(os.environ.get("REPRO_PARALLEL_BENCH_BOOKS", "4000"))

QUERY = "//book[author]/title"


def build_corpus(n_books: int = N_BOOKS) -> Document:
    builder = DocumentBuilder()
    builder.start_element("library")
    for i in range(n_books):
        builder.start_element("book", {"id": f"b{i}"})
        builder.element("author", f"author-{i % 211}")
        builder.element("title", f"title-{i}")
        builder.element("price", str(i % 97))
        builder.end_element()
    builder.end_element()
    return builder.finish()


def noks_for(path_text: str):
    return decompose(build_from_path(parse_xpath(path_text))).noks


def best_of(repeats: int, run) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs (and the last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def nid_lists(results: dict) -> dict[int, list[int]]:
    return {nok_id: [e.node.nid for e in entries]
            for nok_id, entries in results.items()}


def test_single_partition_overhead_within_5pct_and_record_sweep():
    doc = build_corpus()
    executor = shared_scan_executor()

    serial_s, serial_results = best_of(
        REPEATS, lambda: merged_scan(noks_for(QUERY), doc))
    serial_nids = nid_lists(serial_results)

    timings: dict[str, float] = {"serial_ms": round(serial_s * 1e3, 3)}
    for parallelism in (1, 2, 4):
        partitions = partition_document(doc, parallelism)

        def run_parallel(partitions=partitions):
            return parallel_merged_scan(noks_for(QUERY), doc,
                                        partitions=partitions,
                                        executor=executor)

        par_s, par_results = best_of(REPEATS, run_parallel)
        # Theorem 1: partition-order concatenation is bit-identical to
        # the serial scan — order included — at every parallelism.
        assert nid_lists(par_results) == serial_nids
        timings[f"parallel_{parallelism}_ms"] = round(par_s * 1e3, 3)
        timings[f"n_partitions_{parallelism}"] = len(partitions)

    overhead_pct = (timings["parallel_1_ms"] / timings["serial_ms"] - 1) * 100
    BENCH_PR5_PATH.write_text(json.dumps({
        "benchmark": "partition_parallel_merged_scan",
        "query": QUERY,
        "n_nodes": len(doc.nodes),
        "repeats": REPEATS,
        "single_partition_overhead_pct": round(overhead_pct, 2),
        **timings,
    }, indent=2) + "\n", encoding="utf-8")

    assert overhead_pct <= 5.0, (
        f"single-partition parallel scan is {overhead_pct:.1f}% slower than "
        f"serial (limit 5%): the one-partition path must stay a delegate")
