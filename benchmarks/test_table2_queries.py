"""Table 2 reproduction: query categories vs measured selectivity.

For every dataset the six queries must land in their selectivity bands
in the right order (h < m < l, with h genuinely selective); the
benchmark times the selectivity measurement (a full navigational
evaluation) per query.
"""

import pytest

from repro.datagen import DATASETS, measure_selectivity

from conftest import dataset

CASES = [(name, query.qid) for name, spec in DATASETS.items()
         for query in spec.queries]


@pytest.mark.parametrize("name,qid", CASES)
def test_query_selectivity(benchmark, name, qid):
    prepared = dataset(name)
    query = prepared.spec.query(qid)
    selectivity = benchmark(measure_selectivity, prepared.doc, query.text,
                            prepared.stats.n_elements)
    benchmark.extra_info["category"] = query.category or "-"
    benchmark.extra_info["selectivity"] = f"{selectivity * 100:.2f}%"

    if query.selectivity_class == "h":
        assert selectivity < 0.02
    elif query.selectivity_class == "m":
        assert 0.02 < selectivity < 0.18
    elif query.selectivity_class == "l":
        assert selectivity > 0.08


@pytest.mark.parametrize("name", [n for n in DATASETS if n != "d5"])
def test_band_ordering(benchmark, name):
    def check():
        prepared = dataset(name)
        sel = {q.qid: measure_selectivity(prepared.doc, q.text,
                                          prepared.stats.n_elements)
               for q in prepared.spec.queries}
        assert max(sel["Q1"], sel["Q2"]) < max(sel["Q3"], sel["Q4"])
        assert max(sel["Q3"], sel["Q4"]) < min(sel["Q5"], sel["Q6"]) * 1.5

    benchmark.pedantic(check, rounds=1, iterations=1)
