"""Process-backend benchmark: serial vs thread vs process merged scans.

The PR-9 acceptance benchmark.  One large corpus, one scan-bound query,
three backends — results asserted bit-identical (Theorem 1 across the
process boundary), timings recorded to ``BENCH_PR9.json`` at the repo
root (the parallel-smoke CI job uploads it as an artifact).

The ISSUE's speedup gate — the process backend at 4 partitions at least
2x faster than the serial scan — is only *assertable* on a machine with
enough cores to parallelize at all; on a single-core container the
process backend pays fork/IPC overhead with nothing to parallelize
over.  The benchmark therefore measures honestly either way, records
``cpu_count`` alongside the timings, and enforces the 2x gate exactly
when the hardware can express it (>= 2 cores).  The serial-overhead
guard (arena attach + dispatch must not slow the *serial* path) holds
everywhere.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.pattern import build_from_path, decompose
from repro.physical import merged_scan
from repro.physical.parallel_scan import (
    parallel_merged_scan,
    shared_scan_executor,
)
from repro.physical.process_scan import ProcessScanBackend
from repro.xmlkit.arena import release_arena
from repro.xmlkit.partition import partition_document
from repro.xmlkit.tree import Document, DocumentBuilder
from repro.xpath import parse_xpath

BENCH_PR9_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
REPEATS = int(os.environ.get("REPRO_PROCESS_BENCH_REPEATS", "5"))
N_BOOKS = int(os.environ.get("REPRO_PROCESS_BENCH_BOOKS", "30000"))

QUERY = "//book[author]/title"


def build_corpus(n_books: int = N_BOOKS) -> Document:
    builder = DocumentBuilder()
    builder.start_element("library")
    for i in range(n_books):
        builder.start_element("book", {"id": f"b{i}"})
        builder.element("author", f"author-{i % 211}")
        builder.element("title", f"title-{i}")
        builder.element("price", str(i % 97))
        builder.end_element()
    builder.end_element()
    return builder.finish()


def noks_for(path_text: str):
    return decompose(build_from_path(parse_xpath(path_text))).noks


def best_of(repeats: int, run) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def nid_lists(results: dict) -> dict[int, list[int]]:
    return {nok_id: [e.node.nid for e in entries]
            for nok_id, entries in results.items()}


def test_process_backend_speedup_recorded_and_gated():
    doc = build_corpus()
    cpu_count = os.cpu_count() or 1
    backend = ProcessScanBackend(max_workers=min(4, cpu_count))
    partitions = partition_document(doc, 4)
    try:
        # Warm the interpreter and the document (method caches, lazily
        # built structures) before ANY timed run, or measurement order
        # masquerades as backend speed.
        merged_scan(noks_for(QUERY), doc)
        merged_scan(noks_for(QUERY), doc)

        serial_s, serial_results = best_of(
            REPEATS, lambda: merged_scan(noks_for(QUERY), doc))
        serial_nids = nid_lists(serial_results)

        # Serial guard: the arena/process machinery must cost the
        # serial path nothing (it is never touched on that path).
        serial_again_s, _ = best_of(
            REPEATS, lambda: merged_scan(noks_for(QUERY), doc))

        threads_s, thread_results = best_of(
            REPEATS, lambda: parallel_merged_scan(
                noks_for(QUERY), doc, partitions=partitions,
                executor=shared_scan_executor()))
        assert nid_lists(thread_results) == serial_nids

        def run_processes():
            return parallel_merged_scan(
                noks_for(QUERY), doc, partitions=partitions,
                backend="processes", process_backend=backend)

        run_processes()                        # warm: fork + arena write
        processes_s, process_results = best_of(REPEATS, run_processes)
        assert nid_lists(process_results) == serial_nids
    finally:
        backend.close(wait=True)
        release_arena(doc)

    serial_drift_pct = (serial_again_s / serial_s - 1) * 100
    speedup_processes = serial_s / processes_s
    speedup_threads = serial_s / threads_s
    BENCH_PR9_PATH.write_text(json.dumps({
        "benchmark": "process_parallel_merged_scan",
        "query": QUERY,
        "n_nodes": len(doc.nodes),
        "repeats": REPEATS,
        "cpu_count": cpu_count,
        "n_partitions": len(partitions),
        "serial_ms": round(serial_s * 1e3, 3),
        "serial_rerun_ms": round(serial_again_s * 1e3, 3),
        "serial_drift_pct": round(serial_drift_pct, 2),
        "threads_4_ms": round(threads_s * 1e3, 3),
        "processes_4_ms": round(processes_s * 1e3, 3),
        "speedup_threads_4": round(speedup_threads, 3),
        "speedup_processes_4": round(speedup_processes, 3),
        "speedup_gate_enforced": cpu_count >= 2,
    }, indent=2) + "\n", encoding="utf-8")

    # The serial path must not regress (> +5%) with the backend present
    # (a faster rerun is jitter in our favour, not a regression).
    assert serial_drift_pct <= 5.0, (
        f"serial merged scan drifted {serial_drift_pct:.1f}% between "
        "runs; the process-backend machinery must not tax the serial "
        "path")

    if cpu_count >= 2:
        assert speedup_processes >= 2.0, (
            f"process backend at 4 partitions is only "
            f"{speedup_processes:.2f}x serial on {cpu_count} cores "
            "(gate: >= 2x)")
