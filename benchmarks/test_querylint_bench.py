"""Query-lint serving benchmark: the PR-8 acceptance numbers.

Two claims, recorded to ``BENCH_PR8.json``:

* **fast path** — a statically-empty query hitting the serve fast path
  (cached static-empty plan for the current snapshot) is answered
  inline in under 1 ms, without ever occupying a QueryService worker.
* **overhead** — for clean queries (no findings, nothing rewritten)
  the compile-time cost of the lint — the QL passes over an
  already-built summary — stays within 2% of total compile time,
  measured as lint-on vs lint-off compilation of the workload corpus.
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from pathlib import Path

from repro.datagen.workload import DATASETS
from repro.engine import Engine
from repro.serve.service import QueryService

BENCH_PR8_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

BIB = """
<bib>
 <book year="1994"><title>TCP/IP</title>
   <author><last>Stevens</last></author><price>65.95</price></book>
 <book year="2000"><title>Data on the Web</title>
   <author><last>Buneman</last></author><price>39.95</price></book>
</bib>
"""

FAST_PATH_SAMPLES = 200
COMPILE_ROUNDS = 5


def merge_bench(update: dict) -> None:
    """Read-modify-write ``BENCH_PR8.json`` so sections coexist."""
    payload: dict = {}
    if BENCH_PR8_PATH.exists():
        try:
            payload = json.loads(BENCH_PR8_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    BENCH_PR8_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")


class TestStaticEmptyFastPath:
    def test_fast_path_under_one_ms(self):
        service = QueryService(BIB, workers=1)
        try:
            # First submission compiles, caches the static-empty plan.
            assert service.query("//zzz/title").serialize() == ""
            fastpath_before = service.stats()["counters"][
                "static_empty_fastpath"]

            samples_ms = []
            for _ in range(FAST_PATH_SAMPLES):
                start = time.perf_counter()
                result = service.query("//zzz/title")
                samples_ms.append((time.perf_counter() - start) * 1000.0)
                assert len(result) == 0

            fastpath_hits = (service.stats()["counters"]
                             ["static_empty_fastpath"] - fastpath_before)
            assert fastpath_hits == FAST_PATH_SAMPLES, \
                "submissions bypassed the fast path"

            samples_ms.sort()
            median_ms = statistics.median(samples_ms)
            p99_ms = samples_ms[int(0.99 * len(samples_ms))]
            # The acceptance bound: answered in <1ms, no worker slot.
            assert median_ms < 1.0, f"fast path median {median_ms:.3f}ms"

            merge_bench({"static_empty_fast_path": {
                "samples": FAST_PATH_SAMPLES,
                "median_ms": round(median_ms, 4),
                "p99_ms": round(p99_ms, 4),
                "worker_slots_used": 0,
            }})
        finally:
            service.close()


class TestCleanQueryCompileOverhead:
    BLOCKS = 10
    PASSES_PER_BLOCK = 12

    def _corpus_pass_ms(self, pairs, analyze: bool) -> float:
        """One cache-defeated compile pass over the whole corpus."""
        total = 0.0
        for engine, queries in pairs:
            engine.analyze_queries = analyze
            engine.plan_cache.invalidate("bench")
            start = time.perf_counter()
            for text in queries:
                engine.prepare(text)
            total += (time.perf_counter() - start) * 1000.0
        return total

    def test_lint_overhead_within_two_percent(self):
        # Workload corpus at a scale where every label occurs: the lint
        # runs on every compile and finds nothing (the common case).
        #
        # The delta under measurement is ~1µs on a ~65µs compile, far
        # below ambient noise, so the harness removes every noise
        # source it can and estimates robustly over the rest:
        #
        # * Both modes run on the SAME primed engines with the flag
        #   toggled between passes — the cached stats fingerprint (and
        #   so every plan-cache key) is identical either way, making
        #   the paired timings differ by exactly the lint block.
        #   Separate Engine objects fold allocator/dict-layout noise
        #   into the comparison, empirically several times the delta.
        # * GC is disabled during timing (collection pauses dwarf the
        #   signal); pass order alternates to cancel drift.
        # * Estimator: min-within-block (discards slow outliers),
        #   median-across-blocks (robust to blocks hit by migration or
        #   frequency shifts).
        pairs = []
        for name in sorted(DATASETS):
            doc = DATASETS[name].generate(scale=0.1)
            queries = [spec.text for spec in DATASETS[name].queries]
            engine = Engine(doc)
            engine.summary               # prebuild: cached per snapshot
            for text in queries:         # prime plan-verify + lint memos
                engine.prepare(text)
            pairs.append((engine, queries))

        block_on: list[float] = []
        block_off: list[float] = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            i = 0
            for _ in range(self.BLOCKS):
                ons: list[float] = []
                offs: list[float] = []
                for _ in range(self.PASSES_PER_BLOCK):
                    if i % 2:            # alternate order between rounds
                        offs.append(self._corpus_pass_ms(pairs, False))
                        ons.append(self._corpus_pass_ms(pairs, True))
                    else:
                        ons.append(self._corpus_pass_ms(pairs, True))
                        offs.append(self._corpus_pass_ms(pairs, False))
                    i += 1
                block_on.append(min(ons))
                block_off.append(min(offs))
        finally:
            if gc_was_enabled:
                gc.enable()

        best_on = statistics.median(block_on)
        best_off = statistics.median(block_off)
        pcts = sorted((on - off) / off * 100.0
                      for on, off in zip(block_on, block_off))
        overhead_pct = statistics.median(pcts)
        merge_bench({"clean_query_compile_overhead": {
            "corpus": "datagen workloads @ scale 0.1",
            "blocks": self.BLOCKS,
            "passes_per_block": self.PASSES_PER_BLOCK,
            "compile_ms_lint_on": round(best_on, 3),
            "compile_ms_lint_off": round(best_off, 3),
            "overhead_pct": round(overhead_pct, 2),
        }})
        assert overhead_pct <= 2.0, \
            f"lint overhead {overhead_pct:.2f}% exceeds the 2% budget"
