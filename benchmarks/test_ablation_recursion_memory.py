"""Ablation A2: pipelined-join memory vs recursion degree (Section 4.2).

The paper (citing Bar-Yossef et al. [3]) argues the memory needed to
evaluate ``//`` joins over recursive input grows with the document's
recursion degree.  We synthesize documents with controlled nesting
depth and measure the caching merge join's peak ancestor-stack size:
it must equal the recursion degree, while the strict pipelined join on
flat data stays O(1).
"""

import pytest

from repro.pattern import build_from_path, decompose
from repro.physical import (
    NoKMatcher,
    caching_desc_join,
    left_projection,
    pipelined_desc_join,
)
from repro.xmlkit import parse
from repro.xmlkit.storage import ScanCounters
from repro.xpath import parse_xpath


def nested_document(degree: int, copies: int = 20):
    """`copies` independent chains of `degree` nested <a>'s, each with
    a <b/> at the deepest level."""
    chain = "<a>" * degree + "<b/>" + "</a>" * degree
    return parse("<r>" + chain * copies + "</r>")


def join_inputs(doc):
    tree = build_from_path(parse_xpath("//a//b"))
    dec = decompose(tree)
    edge = next(e for e in dec.inter_edges if e.parent.name == "a")
    left = NoKMatcher(dec.noks[edge.nok_from], doc).matches()
    right = NoKMatcher(dec.noks[edge.nok_to], doc).matches()
    return left_projection(left, edge), right, edge


@pytest.mark.parametrize("degree", [1, 2, 4, 8, 16])
def test_caching_join_memory_equals_degree(benchmark, degree):
    def check():
        doc = nested_document(degree)
        projection, right, edge = join_inputs(doc)
        counters = ScanCounters()
        result = caching_desc_join(projection, right, edge, counters)
        assert counters.peak_buffered == degree
        # every b joins with all `degree` enclosing a's
        assert result.pair_count() == degree * 20
        return counters.peak_buffered

    peak = benchmark.pedantic(check, rounds=1, iterations=1)
    benchmark.extra_info["peak_buffered"] = peak


def test_strict_pipelined_is_constant_memory(benchmark):
    def check():
        doc = nested_document(1, copies=200)
        projection, right, edge = join_inputs(doc)
        counters = ScanCounters()
        pipelined_desc_join(projection, right, edge, counters)
        assert counters.peak_buffered <= 1

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("degree", [2, 8, 16])
def test_caching_join_timing(benchmark, degree):
    doc = nested_document(degree, copies=50)
    projection, right, edge = join_inputs(doc)

    def run():
        counters = ScanCounters()
        caching_desc_join(projection, right, edge, counters)
        return counters.peak_buffered

    peak = benchmark(run)
    benchmark.extra_info["recursion_degree"] = degree
    benchmark.extra_info["peak_buffered"] = peak
