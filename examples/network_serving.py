"""Domain scenario 7: serving remote clients over the network.

The bibliography service from scenario 5, now on a TCP socket: a
client on another machine (here: another socket in the same process)
speaks the length-prefixed JSON protocol to the server, which fronts
the query service with adaptive, latency-targeting admission control.

Run with::

    python examples/network_serving.py
"""

import repro
from repro.serve import client as client_mod

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>Economics of Technology</title>
    <price>129.95</price>
  </book>
</bib>
"""


def main() -> None:
    with repro.connect(BIB) as db:
        # Port 0 binds an ephemeral port; read it back from .address.
        server = db.listen(host="127.0.0.1", port=0, workers=4)
        print(f"== 1. Serving on {server.host}:{server.port} ==\n")

        with client_mod.connect(*server.address) as client:
            print("== 2. Remote queries (same kwargs as every other "
                  "surface) ==")
            result = client.query("//book[author]/title")
            print(f"   //book[author]/title -> {result.serialize()}")
            result = client.query("//book[price > $p]/title",
                                  params={"p": 50.0}, timeout_ms=1_000)
            print(f"   price > $p           -> {result.serialize()}")
            print(f"   (snapshot {result.snapshot_id}, "
                  f"server-side {result.total_ms:.2f} ms)\n")

            print("== 3. Prepare once, execute many ==")
            plan = client.prepare("for $b in //book where $b/price < $max "
                                  "return $b/title")
            print(f"   parameters: {sorted(plan.parameters)}")
            for ceiling in (50.0, 100.0, 200.0):
                titles = plan.execute(params={"max": ceiling})
                print(f"   max={ceiling:>6} -> {len(titles)} titles")
            print()

            print("== 4. Errors cross the wire as their class ==")
            try:
                client.query("//book[author]/title", timeout_ms=0.0001)
            except repro.QueryTimeoutError as exc:
                print(f"   QueryTimeoutError: {exc}")
            try:
                client.query("//book[")
            except repro.QuerySyntaxError as exc:
                print(f"   QuerySyntaxError:  {exc}\n")

            print("== 5. The adaptive admission window at work ==")
            for _ in range(32):              # give the controller samples
                client.query("//book/title")
            admission = client.stats()["server"]["admission"]
            print(f"   window   {admission['window']} "
                  f"(started small, grew under fast traffic)")
            print(f"   admitted {admission['admitted']}  "
                  f"rejected {admission['rejected']}  "
                  f"backoffs {admission['backoffs']}")
            print(f"   observed p50 {admission['observed_p50_ms']} ms "
                  f"vs target {admission['target_ms']} ms")

        server.close()                       # graceful drain
        print("\n== 6. Server drained and closed ==")


if __name__ == "__main__":
    main()
