"""Prepared queries and the plan cache: compile once, execute many.

Run with::

    python examples/prepared_queries.py

Covers the PR 2 serving path:

1. ``engine.prepare(text)`` compiles the query once (parse →
   BlossomTree → NoK decomposition → optimizer) and hands back a
   :class:`~repro.engine.prepared.PreparedQuery`;
2. ``plan.execute(params={...})`` runs it repeatedly with external
   ``$parameter`` values substituted at execution time;
3. plain ``engine.query(text)`` transparently reuses plans through the
   engine's LRU plan cache, and updates invalidate it;
4. the cache's hit/miss/eviction/invalidation counters show up in the
   Prometheus exposition alongside the other engine metrics.
"""

from repro import Database, Engine, parse
from repro.obs.export import prometheus_text
from repro.obs.metrics import REGISTRY

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>Economics</title>
    <price>29.99</price>
  </book>
</bib>
"""


def main() -> None:
    engine = Engine(parse(BIB))

    print("== 1. Prepare once, execute with different bindings ==")
    plan = engine.prepare(
        "for $b in //book where $b/price < $max return $b/title")
    print(f"parameters: {sorted(plan.parameters)}")
    for threshold in (30.0, 50.0, 100.0):
        titles = plan.execute(params={"max": threshold}).string_values()
        print(f"  $max = {threshold:6.2f} -> {titles}")

    print("\n== 2. The transparent plan cache ==")
    engine.query("//book[author]/title")            # compiles, cached
    engine.query("//book[author]/title")            # served from cache
    engine.query("\n  //book[author]/title\n  ")    # normalized: same plan
    stats = engine.plan_cache.stats()
    print(f"cache after three query() calls: {stats}")

    result = engine.query("//book[author]/title", trace=True)
    span = engine.last_trace.root
    print(f"query span plan-cache attribute: {span.attrs['plan-cache']}")
    print(f"titles: {result.string_values()}")

    print("\n== 3. Updates invalidate cached plans ==")
    db = Database.from_xml(BIB)
    db.query("//book/title")
    print(f"cached plans before update: {len(db.engine.plan_cache)}")
    db.updater().insert_subtree(
        db.doc.root, parse("<book><title>Fresh Arrival</title></book>").root)
    print(f"cached plans after update:  {len(db.engine.plan_cache)}")
    print(f"titles now: {db.query('//book/title').string_values()}")

    print("\n== 4. Plan-cache counters in the Prometheus exposition ==")
    exposition = prometheus_text(REGISTRY)
    for line in exposition.splitlines():
        if line.startswith("repro_plan_cache"):
            print(f"  {line}")


if __name__ == "__main__":
    main()
