"""Domain scenario 1: bibliography curation over a dblp-style corpus.

Motivating workload from the paper's introduction: correlated path
expressions over bibliographic data.  This example runs three
editorial-audit queries over a generated dblp-like corpus:

1. find theses missing a ``school`` element (catalog hygiene),
2. pair proceedings with the same editor list (possible duplicates —
   Example 1's deep-equal pattern on real-ish data),
3. produce a per-venue publication digest with ordering.

Run with::

    python examples/bibliography_pairs.py
"""

from repro import Engine
from repro.datagen import generate_d5
from repro.xmlkit import compute_stats


def main() -> None:
    doc = generate_d5(scale=0.05, seed=7)
    stats = compute_stats(doc, with_size=False)
    print(f"corpus: {stats.n_elements} elements, "
          f"{stats.n_distinct_tags} tags, max depth {stats.max_depth}\n")

    engine = Engine(doc)

    print("== 1. Theses without a school element ==")
    result = engine.query(
        "for $t in //phdthesis where empty($t/school) return $t/title")
    for title in result.string_values():
        print("  missing school:", title)
    print(f"  plan: {engine.last_plan}\n")

    print("== 2. Same-editor proceedings pairs (deep-equal correlation) ==")
    result = engine.query(
        """
        for $p1 in //proceedings, $p2 in //proceedings
        where $p1 << $p2
          and not($p1/title = $p2/title)
          and deep-equal($p1/editor, $p2/editor)
        return <pair>{ $p1/booktitle }{ $p2/booktitle }</pair>
        """)
    print(f"  {len(result)} suspicious pairs")
    for node in result.nodes()[:5]:
        print("  ", node.string_value())
    print()

    print("== 3. Ordered digest of journal articles ==")
    result = engine.query(
        """
        for $a in //article
        where $a/volume > 30
        order by $a/journal, $a/year descending
        return <entry>{ $a/journal }: { $a/title }</entry>
        """)
    for node in result.nodes()[:8]:
        print("  ", node.string_value())
    print(f"  ({len(result)} entries total)")


if __name__ == "__main__":
    main()
