"""A tour of the paper's machinery on Figures 3-7.

Walks through the internal representations step by step:

* the NoK pattern tree of Figure 3(a) and its matching against the
  Figure 3(b)-style XML tree,
* the NestedList notation of Figure 4 (rendered exactly),
* the physical pointer structure of Figure 6 (as group lists),
* the two query plans of Figures 5 and 7 (merge vs nested-loop joins),
* Example 5's order-preservation counterexample.

Run with::

    python examples/nestedlist_tour.py
"""

from repro import parse
from repro.algebra import project
from repro.pattern import build_blossom_tree, decompose
from repro.physical import NoKMatcher, nested_loop_pairs
from repro.xquery import parse_flwor


def labeller():
    counters = {}

    def label(node):
        counters[node.tag] = counters.get(node.tag, 0) + 1
        return f"{node.tag}{counters[node.tag]}"

    return label


def main() -> None:
    print("== Figure 3: NoK pattern (a (b (d)) (c)) vs an XML tree ==")
    doc = parse("<a><b/><b><d/><d/></b><b><d/></b><c/><c/></a>")
    flwor = parse_flwor(
        'for $a in doc("x")/a let $b := $a/b let $d := $b/d '
        "let $c := $a/c return $a")
    tree = build_blossom_tree(flwor)
    print(tree.describe())

    dec = decompose(tree)
    [match] = NoKMatcher(dec.noks[0], doc).matches()
    a_entry = match.group_for(tree.var_vertex["a"])[0]

    print("\n== Figure 4: the NestedList in the paper's notation ==")
    print(" ", a_entry.sexpr(labeller()))

    print("\n== Figure 6: group lists (sibling/child pointers) ==")
    b_vertex = tree.var_vertex["b"]
    d_vertex = tree.var_vertex["d"]
    for i, b_entry in enumerate(a_entry.group_for(b_vertex), 1):
        ds = project(b_entry, d_vertex)
        print(f"  b{i}: {len(ds)} d-children "
              f"(nids {[d.nid for d in ds]})")

    print("\n== Example 5 / Figure 7: <<-join breaks document order ==")
    bib = parse("<bib><book i='1'/><book i='2'/><book i='3'/>"
                "<book i='4'/></bib>")
    books = bib.elements_by_tag("book")
    pairs = nested_loop_pairs(books, books, lambda x, y: x.nid < y.nid)
    projected = [y.attrs["i"] for _, y in pairs]
    print(f"  projection on the 2nd component: {projected}")
    print(f"  document-ordered? {projected == sorted(projected)} "
          "(the paper's counterexample)")


if __name__ == "__main__":
    main()
