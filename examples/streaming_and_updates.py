"""Domain scenario 3: streaming matches and the update problem.

Two operational concerns the paper discusses but does not benchmark:

1. **Streaming** (Section 5.2): match NoK patterns over raw XML text in
   a single pass through SAX events, without building a tree — the
   regime where the scan-based operators shine and index-based ones
   cannot run at all.
2. **Updates** (Section 2.1): region labels and tag indexes are
   materializations of structure; insert one element and watch how much
   relabeling/rebuilding the join-based machinery needs, while the
   scan-based path needs none.

Run with::

    python examples/streaming_and_updates.py
"""

from repro import Engine, parse
from repro.datagen import generate_d3
from repro.pattern import build_from_path, decompose
from repro.physical.streaming import StreamingNoKMatcher
from repro.xmlkit import DocumentUpdater, serialize
from repro.xmlkit.sax import parse_string
from repro.xpath import parse_xpath


def single_nok(path_text):
    dec = decompose(build_from_path(parse_xpath(path_text)))
    [nok] = [n for n in dec.noks if n.root.name != "#root"]
    return nok


def main() -> None:
    doc = generate_d3(scale=0.1)
    text = serialize(doc.root)
    print(f"corpus: {len(text):,} characters of raw XML\n")

    print("== 1. Streaming NoK matching (one pass, no tree) ==")
    for pattern in ("//item/attributes", "//author/name/last_name",
                    "//publisher/street_information/street_address"):
        handler = StreamingNoKMatcher(single_nok(pattern))
        parse_string(text, handler)
        print(f"  {pattern:48s} {handler.count:4d} matches, "
              f"peak state {handler.max_open}")
    print()

    print("== 2. The update problem, quantified ==")
    engine = Engine(doc)
    updater = DocumentUpdater(doc)
    updater.register_index(engine.index)
    engine.index.build()

    query = "//item//street_address"
    before = len(engine.query(query, strategy="pipelined"))
    print(f"  before update: {before} results")

    first_item = doc.elements_by_tag("item")[0]
    fragment = parse("<street_address>1 brand new way</street_address>").root
    report = updater.insert_subtree(first_item, fragment)
    print(f"  inserted 1 element near the document start:")
    print(f"    nodes relabeled : {report.nodes_relabeled:6d} "
          f"(of {len(doc.nodes)} — the materialized-encoding cost)")
    print(f"    indexes dropped : {report.indexes_invalidated}")

    after_scan = len(engine.query(query, strategy="pipelined"))
    print(f"  scan-based answer, zero maintenance : {after_scan} results")
    engine.index.build()  # the join-based pipeline pays this first
    after_ts = len(engine.query(query, strategy="twigstack"))
    print(f"  join-based answer after index rebuild: {after_ts} results")
    assert after_scan == after_ts == before + 1


if __name__ == "__main__":
    main()
