"""The paper's Example 1: correlated path expressions end to end.

Reproduces the book-pair query (same-author pairs of distinct books)
against the document of Example 2, showing:

* the BlossomTree built from the FLWOR (Figure 1),
* its decomposition into NoK pattern trees + inter edges (Algorithm 1),
* the final result — identical to the paper's printed output — under
  several physical strategies.

Run with::

    python examples/example1_bookpairs.py
"""

from repro import Engine, parse
from repro.pattern import assign_dewey, build_blossom_tree, decompose
from repro.xquery import parse_flwor

DOCUMENT = """
<bib>
<book>
<title> Maximum Security </title>
</book>
<book>
<title> The Art of Computer Programming </title>
<author>
<last> Knuth </last>
<first> Donald </first>
</author>
</book>
<book>
<title> Terrorist Hunter </title>
</book>
<book>
<title> TeX Book </title>
<author>
<last> Knuth </last>
<first> Donald </first>
</author>
</book>
</bib>
"""

QUERY = """
<bib>
{
for $book1 in doc("bib.xml")//book,
    $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return
  <book-pair>
    { $book1/title }
    { $book2/title }
  </book-pair>
}
</bib>
"""


def main() -> None:
    doc = parse(DOCUMENT)

    print("== The BlossomTree (Figure 1) ==")
    flwor = parse_flwor(QUERY)
    tree = build_blossom_tree(flwor)
    print(tree.describe())

    print("\n== Decomposition into NoK pattern trees (Algorithm 1) ==")
    decomposition = decompose(tree)
    print(decomposition.describe())

    print("\n== Global Dewey IDs of the returning nodes (Section 3.3) ==")
    dewey = assign_dewey(tree)
    for var in ("book1", "book2", "aut1", "aut2"):
        print(f"  ${var:6s} -> {dewey.format(dewey.variable_dewey(tree, var))}")

    print("\n== Query result (identical under every strategy) ==")
    engine = Engine(doc)
    reference = None
    for strategy in ("naive", "pipelined", "stack", "bnlj", "auto"):
        result = engine.query(QUERY, strategy=strategy)
        text = result.serialize()
        status = "OK" if reference in (None, text) else "MISMATCH!"
        reference = reference or text
        print(f"  {strategy:10s} {status}")
    print()
    print(engine.query(QUERY).pretty())


if __name__ == "__main__":
    main()
