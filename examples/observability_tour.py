"""A tour of the observability layer (tracing, metrics, EXPLAIN ANALYZE).

Runs the paper's Example 1 FLWOR under ``trace=True`` and shows every
surface the :mod:`repro.obs` package offers:

* the span tree of one traced query (phases, per-NoK scans, per-edge
  structural joins),
* ``Engine.explain_analyze`` — per-operator measured work next to the
  cost model's estimates,
* the process-wide metrics registry in Prometheus text exposition,
* the slow-query log on a :class:`~repro.engine.database.Database`,
* the runtime statistics store and the feedback loop it powers
  (``db.stats()``, strategy demotions, ``python -m repro.obs``).

Run with::

    python examples/observability_tour.py
"""

from repro import Engine, parse
from repro.engine.database import Database
from repro.obs import REGISTRY, prometheus_text

from example1_bookpairs import DOCUMENT, QUERY


def main() -> None:
    doc = parse(DOCUMENT)
    engine = Engine(doc)

    print("== 1. A traced query: the span tree ==")
    result = engine.query(QUERY, trace=True)
    print(f"{len(result)} items in {result.trace.total_ms:.3f} ms\n")
    print(result.trace.pretty())

    print("\n== 2. EXPLAIN ANALYZE: estimates vs. actuals ==")
    print(engine.explain_analyze(QUERY))

    print("\n== 3. Trace export: JSON lines (first three spans) ==")
    for line in result.trace.to_jsonl().splitlines()[:3]:
        print(f"  {line}")

    print("\n== 4. Process metrics (Prometheus text exposition) ==")
    text = prometheus_text(REGISTRY)
    shown = [ln for ln in text.splitlines() if not ln.startswith("#")]
    for line in shown[:20]:
        print(f"  {line}")
    if len(shown) > 20:
        print(f"  ... ({len(shown) - 20} more sample lines)")

    print("\n== 5. The slow-query log ==")
    db = Database(doc, slow_query_ms=0.0)   # threshold 0: log everything
    db.query(QUERY)
    db.query("//book/title", strategy="pipelined")
    for record in db.slow_log.entries:
        print(f"  {record.describe()}")

    print("\n== 6. The runtime statistics store & feedback ==")
    fb = Database(doc, feedback=True)
    for _ in range(6):                      # probe both arms, then settle
        fb.query("//book[author]/title")
    store = fb.engine.stats_store
    for entry in store.top_queries(3):
        print(f"  {entry['strategy']:<10} n={entry['executions']}"
              f" mean={entry['mean_ms']:.3f}ms  {entry['query']}")
    snapshot = fb.stats(top=3)
    plan_cache = snapshot["plan_cache"]
    print(f"  plan cache: {plan_cache['hits']} hits,"
          f" {plan_cache['misses']} misses")
    settled = sorted(set(snapshot["statstore"]["settled"].values()))
    print(f"  demotions so far: {len(store.demotions)}"
          f" (settled on: {', '.join(settled)})")
    print("  (try `python -m repro.obs demo` for the full rendered view)")


if __name__ == "__main__":
    main()
