"""Domain scenario 2: choosing join operators, the Section-5 experiment.

Runs one query category across every physical strategy on a recursive
(Treebank-style) and a non-recursive (catalog-style) dataset, printing
wall time and the machine-independent work counters.  This is a
single-cell slice of the Table 3 reproduction, as a script.

Run with::

    python examples/operator_bakeoff.py
"""

import time

from repro.datagen import DATASETS
from repro.engine import Engine
from repro.errors import DNFError
from repro.xmlkit.storage import ScanCounters


def bake(name: str, qid: str, strategies: list[str], scale: float = 0.2) -> None:
    spec = DATASETS[name]
    doc = spec.generate(scale=scale)
    engine = Engine(doc)
    query = spec.query(qid)
    budget = 120 * len(doc.nodes)

    print(f"-- {name} {qid} ({query.category or 'uncategorized'}): "
          f"{query.text}")
    for strategy in strategies:
        counters = ScanCounters()
        started = time.perf_counter()
        try:
            result = engine.query(query.text, strategy=strategy,
                                  counters=counters, work_budget=budget)
            elapsed = f"{time.perf_counter() - started:8.4f}s"
            outcome = f"{len(result):5d} results"
        except DNFError:
            elapsed = "     DNF"
            outcome = "(budget exhausted)"
        print(f"  {strategy:10s} {elapsed}  "
              f"scanned={counters.nodes_scanned:8d}  "
              f"cmp={counters.comparisons:8d}  {outcome}")
    print()


def main() -> None:
    print("=== Recursive data (d4, Treebank-style): "
          "TS wins, naive NL drowns ===\n")
    bake("d4", "Q4", ["xhive", "twigstack", "bnlj", "nl", "stack"])
    bake("d4", "Q1", ["xhive", "twigstack", "bnlj", "nl", "stack"])

    print("=== Non-recursive data (d3, catalog-style): "
          "the pipelined join is one scan ===\n")
    bake("d3", "Q5", ["xhive", "twigstack", "pipelined", "bnlj"])
    bake("d3", "Q1", ["xhive", "twigstack", "pipelined", "bnlj"])


if __name__ == "__main__":
    main()
