"""Domain scenario 5: serving concurrent queries with snapshot isolation.

A bibliography service under mixed traffic: readers fan out through a
bounded worker pool while a writer publishes copy-on-write update
batches — every query reports the exact snapshot it ran against, and
in-flight queries never see a half-applied update.

Run with::

    python examples/concurrent_service.py
"""

from concurrent.futures import wait

import repro

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <price>39.95</price>
  </book>
</bib>
"""


def main() -> None:
    with repro.connect(BIB) as db:
        service = db.serve(workers=4, default_timeout_ms=5_000)

        print("== 1. Submit a batch through the worker pool ==")
        results = service.query_batch([
            "//book/title",
            "//book[price > 50]/title",
            "for $b in //book order by $b/title return $b/title",
        ])
        for served in results:
            print(f"  snapshot {served.snapshot_id}: "
                  f"{served.result.string_values()} "
                  f"(wait {served.wait_ms:.2f} ms, run {served.run_ms:.2f} ms)")

        print("\n== 2. A copy-on-write update batch ==")
        before = service.query("//book/title")
        with service.updater() as up:
            bib = up.doc.root
            up.insert_subtree(
                bib, repro.parse(
                    "<book year='2005'><title>BlossomTree</title>"
                    "<price>0.0</price></book>").root)
        after = service.query("//book/title")
        print(f"  snapshot {before.snapshot_id}: {len(before)} titles "
              f"-> snapshot {after.snapshot_id}: {len(after)} titles")

        print("\n== 3. Concurrency: overlapping submissions coalesce ==")
        futures = [service.submit("//book[author]/title") for _ in range(16)]
        wait(futures)
        answers = {f.result().serialize() for f in futures}
        print(f"  16 concurrent submissions -> {len(answers)} distinct "
              f"answer (identical in-flight queries share one execution)")

        print("\n== 4. Service counters ==")
        for key, value in sorted(service.stats().items()):
            print(f"  {key:20s} {value}")


if __name__ == "__main__":
    main()
