"""Domain scenario 4: a persistent XML database session.

Shows the storage-backed workflow: build a database from a generated
corpus, persist it in the succinct binary format, reopen it, query
with the cost-based optimizer, apply an update, and query again —
the full native-XML-database loop the paper's setting assumes.

Run with::

    python examples/persistent_database.py
"""

import os
import tempfile

import repro
from repro import parse
from repro.datagen import generate_d3
from repro.engine import Database
from repro.xmlkit import serialize


def main() -> None:
    corpus = generate_d3(scale=0.1)
    xml_text = serialize(corpus.root)

    print("== 1. Build and persist ==")
    db = Database.from_xml(xml_text)
    path = os.path.join(tempfile.mkdtemp(), "catalog.btx")
    written = db.save(path)
    print(f"  XML text : {len(xml_text.encode('utf-8')):,} bytes")
    print(f"  binary   : {written:,} bytes "
          f"({written * 100 // len(xml_text.encode('utf-8'))}% of the text)")

    print("\n== 2. Reopen and query (cost-based plans) ==")
    db = repro.connect(path)  # sniffs the BTRX1 magic, loads the binary
    print(f"  {db!r}")
    for query in ("//item/attributes//length",
                  "//author[//last_name]/name/first_name"):
        result = db.query(query, strategy="cost")
        plan = db.engine.last_plan.split(";")[0]
        print(f"  {query:42s} {len(result):4d} results  [{plan}]")

    print("\n== 3. Update, then query again ==")
    first_item = db.doc.elements_by_tag("item")[0]
    report = db.updater().insert_subtree(
        first_item, parse("<subtitle>fresh edition</subtitle>").root)
    print(f"  inserted 1 element: {report.nodes_relabeled} nodes relabeled, "
          f"{report.indexes_invalidated} index invalidated")
    result = db.query("//item[//subtitle]//isbn")
    print(f"  //item[//subtitle]//isbn now: {len(result)} results")

    print("\n== 4. Persist the updated state ==")
    written = db.save(path)
    reopened = repro.connect(path)
    assert len(reopened.query("//item[//subtitle]//isbn")) == len(result)
    print(f"  saved {written:,} bytes; reopened copy agrees.")


if __name__ == "__main__":
    main()
