"""Quickstart: connect to a document, run path and FLWOR queries, inspect plans.

Run with::

    python examples/quickstart.py
"""

import repro

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>Economics</title>
    <price>29.99</price>
  </book>
</bib>
"""


def main() -> None:
    with repro.connect(BIB) as db:
        print("== 1. Path queries ==")
        for query in [
            "//book/title",
            "//book[author]/title",
            "//book[price > 30]/title",
            '//book[author/last = "Buneman"]/title',
        ]:
            result = db.query(query)
            print(f"{query:45s} -> {result.string_values()}")

        print("\n== 2. A FLWOR query with construction ==")
        flwor = """
        for $b in //book
        let $a := $b/author
        where $b/price > 30
        order by $b/title
        return <entry authors="many">{ $b/title }{ count($a) }</entry>
        """
        result = db.query(flwor)
        print(result.pretty())

        print("== 3. Choosing a physical strategy ==")
        query = "//book[author]//last"
        for strategy in ("auto", "pipelined", "twigstack", "bnlj",
                         "naive", "xhive"):
            result = db.query(query, strategy=strategy)
            print(f"{strategy:10s} -> {result.string_values()}")

        print("\n== 4. Explaining a plan ==")
        print(db.explain("//book[author]//last"))


if __name__ == "__main__":
    main()
